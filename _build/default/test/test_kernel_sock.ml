(* Socket state machines: the paper's motivating bind/listen example,
   per-protocol behaviour, and the network-device paths. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let sockaddr = group [ i 2L; i 80L; i 1L ]

let test_listen_requires_bind () =
  (* Section 1's motivating example: listen on an unbound socket
     returns EDESTADDRREQ. *)
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "listen" [ r 0; iv 8 ];
           call "bind" [ r 0; sockaddr ];
           call "listen" [ r 0; iv 8 ];
         ])
  in
  check_errno "unbound" (Some K.Errno.EDESTADDRREQ) r.Exec.calls.(1);
  check_ok "bind" r.Exec.calls.(2);
  check_ok "bound listen" r.Exec.calls.(3)

let test_bind_changes_listen_coverage () =
  (* The influence relation is visible in coverage, which is what
     dynamic learning keys on. *)
  let unbound =
    run (prog [ call "socket$tcp" [ i 2L; i 1L; i 6L ]; call "listen" [ r 0; iv 8 ] ])
  in
  let bound =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "bind" [ r 0; sockaddr ];
           call "listen" [ r 0; iv 8 ];
         ])
  in
  Alcotest.(check bool) "listen path differs" false
    (Exec.cov_equal unbound.Exec.calls.(1).Exec.cov bound.Exec.calls.(2).Exec.cov)

let test_double_bind () =
  let r =
    run
      (prog
         [
           call "socket$udp" [ i 2L; i 2L; i 17L ];
           call "bind" [ r 0; sockaddr ];
           call "bind" [ r 0; sockaddr ];
         ])
  in
  check_errno "double bind" (Some K.Errno.EINVAL) r.Exec.calls.(2)

let test_listen_udp_unsupported () =
  let r =
    run
      (prog
         [
           call "socket$udp" [ i 2L; i 2L; i 17L ];
           call "bind" [ r 0; sockaddr ];
           call "listen" [ r 0; iv 8 ];
         ])
  in
  check_errno "udp cannot listen" (Some K.Errno.EOPNOTSUPP) r.Exec.calls.(2)

let test_accept_lifecycle () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "accept" [ r 0; group [ i 0L; i 0L; i 0L ] ];
           call "bind" [ r 0; sockaddr ];
           call "listen" [ r 0; iv 8 ];
           call "accept" [ r 0; group [ i 0L; i 0L; i 0L ] ];
           call "sendto" [ r 4; buf 10; iv 10; i 0L; sockaddr ];
         ])
  in
  check_errno "accept before listen" (Some K.Errno.EINVAL) r.Exec.calls.(1);
  check_ok "accept" r.Exec.calls.(4);
  check_ok "peer socket usable" r.Exec.calls.(5)

let test_tcp_send_requires_connect () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "sendto" [ r 0; buf 10; iv 10; i 0L; sockaddr ];
           call "connect" [ r 0; sockaddr ];
           call "sendto" [ r 0; buf 10; iv 10; i 0L; sockaddr ];
           call "connect" [ r 0; sockaddr ];
         ])
  in
  check_errno "unconnected tcp send" (Some K.Errno.ENOTCONN) r.Exec.calls.(1);
  check_ok "connected send" r.Exec.calls.(3);
  check_errno "reconnect" (Some K.Errno.EISCONN) r.Exec.calls.(4)

let test_udp_send_unconnected () =
  let r =
    run
      (prog
         [
           call "socket$udp" [ i 2L; i 2L; i 17L ];
           call "sendto" [ r 0; buf 10; iv 10; i 0L; sockaddr ];
         ])
  in
  check_ok "udp sendto without connect" r.Exec.calls.(1)

let test_shutdown_pipe () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "connect" [ r 0; sockaddr ];
           call "shutdown" [ r 0; i 2L ];
           call "sendto" [ r 0; buf 10; iv 10; i 0L; sockaddr ];
           call "shutdown" [ r 0; i 5L ];
         ])
  in
  check_errno "send after shutdown" (Some K.Errno.EPIPE) r.Exec.calls.(3);
  check_errno "bad how" (Some K.Errno.EINVAL) r.Exec.calls.(4)

let test_connect_null_addr () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "connect" [ r 0; Value.Null ];
         ])
  in
  check_errno "null sockaddr" (Some K.Errno.EFAULT) r.Exec.calls.(1)

let test_oversized_send () =
  let r =
    run
      (prog
         [
           call "socket$udp" [ i 2L; i 2L; i 17L ];
           call "sendto" [ r 0; buf 100000; iv 100000; i 0L; sockaddr ];
         ])
  in
  check_errno "oversized frame" (Some K.Errno.ENOMEM) r.Exec.calls.(1)

let test_generic_write_on_socket () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "write" [ r 0; buf 10; iv 10 ];
           call "connect" [ r 0; sockaddr ];
           call "write" [ r 0; buf 10; iv 10 ];
         ])
  in
  check_errno "write before connect" (Some K.Errno.ENOTCONN) r.Exec.calls.(1);
  check_ok "write after connect" r.Exec.calls.(3)

let test_rxrpc_requires_bind () =
  let r =
    run
      (prog
         [
           call "socket$rxrpc" [ i 33L; i 2L; i 0L ];
           call "connect" [ r 0; sockaddr ];
           call "bind$rxrpc" [ r 0; sockaddr ];
           call "connect" [ r 0; sockaddr ];
         ])
  in
  check_errno "unbound rxrpc connect" (Some K.Errno.EDESTADDRREQ) r.Exec.calls.(1);
  check_ok "bound connect" r.Exec.calls.(3)

let test_bind_rxrpc_on_tcp () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "bind$rxrpc" [ r 0; sockaddr ];
         ])
  in
  check_errno "family mismatch" (Some K.Errno.EOPNOTSUPP) r.Exec.calls.(1)

(* ---- netdev ---- *)

let test_netdev_lifecycle () =
  let r =
    run
      (prog
         [
           call "socket$packet" [ i 17L; i 3L; i 768L ];
           call "sendto$packet" [ r 0; buf 64; iv 64; i 0L; ptr (s "eth0") ];
           call "ioctl$ifup" [ r 0; i 0x8914L; ptr (s "eth0") ];
           call "sendto$packet" [ r 0; buf 64; iv 64; i 0L; ptr (s "eth0") ];
           call "ioctl$ifdown" [ r 0; i 0x8915L; ptr (s "eth0") ];
           call "sendto$packet" [ r 0; buf 64; iv 64; i 0L; ptr (s "eth0") ];
         ])
  in
  check_errno "tx on down iface" (Some K.Errno.ENODEV) r.Exec.calls.(1);
  check_ok "tx on up iface" r.Exec.calls.(3);
  check_errno "tx after down" (Some K.Errno.ENODEV) r.Exec.calls.(5)

let test_macvlan_lifecycle () =
  let r =
    run
      (prog
         [
           call "socket$packet" [ i 17L; i 3L; i 768L ];
           call "ioctl$macvlan_del" [ r 0; i 0x89f1L; ptr (s "macvlan0") ];
           call "ioctl$macvlan_create" [ r 0; i 0x89f0L; ptr (s "eth0") ];
           call "ioctl$macvlan_create" [ r 0; i 0x89f0L; ptr (s "eth0") ];
           call "ioctl$ifup" [ r 0; i 0x8914L; ptr (s "macvlan0") ];
         ])
  in
  check_errno "del before create" (Some K.Errno.ENODEV) r.Exec.calls.(1);
  check_ok "create" r.Exec.calls.(2);
  check_errno "duplicate" (Some K.Errno.EEXIST) r.Exec.calls.(3);
  check_ok "up" r.Exec.calls.(4)

let test_qdisc_lifecycle () =
  let r =
    run
      (prog
         [
           call "socket$packet" [ i 17L; i 3L; i 768L ];
           call "ioctl$qdisc_add" [ r 0; i 0x89f2L; ptr (s "eth0"); iv 100 ];
           call "ioctl$qdisc_del" [ r 0; i 0x89f3L; ptr (s "eth0") ];
           call "ioctl$qdisc_add" [ r 0; i 0x89f2L; ptr (s "nope"); iv 100 ];
         ])
  in
  check_ok "add" r.Exec.calls.(1);
  check_ok "del" r.Exec.calls.(2);
  check_errno "unknown dev" (Some K.Errno.ENODEV) r.Exec.calls.(3)

(* ---- misc socket families ---- *)

let test_llcp_listen_requires_bind () =
  let r =
    run
      (prog
         [
           call "socket$llcp" [ i 39L; i 1L; i 1L ];
           call "listen$llcp" [ r 0; iv 4 ];
           call "bind$llcp" [ r 0; group [ i 0L; i 8L; buf 8 ] ];
           call "listen$llcp" [ r 0; iv 4 ];
         ])
  in
  check_errno "unbound" (Some K.Errno.EDESTADDRREQ) r.Exec.calls.(1);
  check_ok "bound listen" r.Exec.calls.(3)

let test_154_key_management () =
  let r =
    run
      (prog
         [
           call "socket$ieee802154" [ i 36L; i 2L; i 0L ];
           call "ioctl$154_SET_KEY" [ r 0; i 0x8b01L; group [ i 0L; i 7L; buf 16 ] ];
           call "ioctl$154_DEL_KEY" [ r 0; i 0x8b02L; group [ i 0L; i 7L; buf 0 ] ];
           call "ioctl$154_SET_KEY" [ r 0; i 0x8b01L; group [ i 9L; i 7L; buf 16 ] ];
         ])
  in
  check_ok "set" r.Exec.calls.(1);
  check_ok "del existing" r.Exec.calls.(2);
  check_errno "bad mode" (Some K.Errno.EINVAL) r.Exec.calls.(3)

let suite =
  [
    case "listen requires bind (motivation)" test_listen_requires_bind;
    case "bind changes listen coverage" test_bind_changes_listen_coverage;
    case "double bind" test_double_bind;
    case "udp cannot listen" test_listen_udp_unsupported;
    case "accept lifecycle" test_accept_lifecycle;
    case "tcp send requires connect" test_tcp_send_requires_connect;
    case "udp unconnected send" test_udp_send_unconnected;
    case "shutdown pipe" test_shutdown_pipe;
    case "connect null addr" test_connect_null_addr;
    case "oversized send" test_oversized_send;
    case "generic write on socket" test_generic_write_on_socket;
    case "rxrpc requires bind" test_rxrpc_requires_bind;
    case "bind$rxrpc family mismatch" test_bind_rxrpc_on_tcp;
    case "netdev up/down" test_netdev_lifecycle;
    case "macvlan lifecycle" test_macvlan_lifecycle;
    case "qdisc lifecycle" test_qdisc_lifecycle;
    case "llcp listen requires bind" test_llcp_listen_requires_bind;
    case "802154 key management" test_154_key_management;
  ]
