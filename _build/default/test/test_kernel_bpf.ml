(* BPF maps/programs and inotify event observation. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let map_create ~keys ~vals ~max =
  call "bpf$MAP_CREATE" [ i 0L; group [ iv keys; iv vals; iv max ] ]

(* A loadable program: last instruction is the exit opcode 0x95. *)
let prog_load n =
  let insns = List.init n (fun k -> if k = n - 1 then i 0x95L else i 0x07L) in
  call "bpf$PROG_LOAD" [ i 5L; group [ Value.Group insns; i 0L ] ]

let test_map_lifecycle () =
  let r =
    run
      (prog
         [
           map_create ~keys:8 ~vals:16 ~max:2;
           call "bpf$MAP_LOOKUP_ELEM" [ i 1L; r 0; buf 8; buf 16 ];
           call "bpf$MAP_UPDATE_ELEM" [ i 2L; r 0; buf 8; buf 16 ];
           call "bpf$MAP_LOOKUP_ELEM" [ i 1L; r 0; buf 8; buf 16 ];
           call "bpf$MAP_UPDATE_ELEM" [ i 2L; r 0; buf 8; buf 16 ];
           call "bpf$MAP_UPDATE_ELEM" [ i 2L; r 0; buf 8; buf 16 ];
           call "bpf$MAP_DELETE_ELEM" [ i 3L; r 0; buf 8 ];
           call "bpf$MAP_UPDATE_ELEM" [ i 2L; r 0; buf 4; buf 16 ];
         ])
  in
  check_errno "lookup empty" (Some K.Errno.ENOENT) r.Exec.calls.(1);
  check_ok "update" r.Exec.calls.(2);
  check_ok "lookup" r.Exec.calls.(3);
  check_ok "second update" r.Exec.calls.(4);
  check_errno "map full" (Some K.Errno.ENOSPC) r.Exec.calls.(5);
  check_ok "delete" r.Exec.calls.(6);
  check_errno "short key" (Some K.Errno.EFAULT) r.Exec.calls.(7)

let test_map_validation () =
  let r =
    run
      (prog
         [
           map_create ~keys:0 ~vals:16 ~max:4;
           map_create ~keys:8 ~vals:0 ~max:4;
           map_create ~keys:8 ~vals:16 ~max:0;
         ])
  in
  Array.iter
    (fun (cr : Exec.call_result) ->
      check_errno "rejected" (Some K.Errno.EINVAL) cr)
    r.Exec.calls

let test_map_freeze () =
  let r =
    run
      (prog
         [
           map_create ~keys:8 ~vals:16 ~max:4;
           call "bpf$MAP_FREEZE" [ i 22L; r 0 ];
           call "bpf$MAP_UPDATE_ELEM" [ i 2L; r 0; buf 8; buf 16 ];
           call "bpf$MAP_FREEZE" [ i 22L; r 0 ];
         ])
  in
  check_ok "freeze" r.Exec.calls.(1);
  check_errno "update frozen" (Some K.Errno.EPERM) r.Exec.calls.(2);
  check_errno "double freeze" (Some K.Errno.EBUSY) r.Exec.calls.(3)

let test_prog_verifier () =
  let no_exit =
    call "bpf$PROG_LOAD" [ i 5L; group [ Value.Group [ i 0x07L; i 0x07L ]; i 0L ] ]
  in
  let empty = call "bpf$PROG_LOAD" [ i 5L; group [ Value.Group []; i 0L ] ] in
  let r = run (prog [ no_exit; empty; prog_load 4 ]) in
  check_errno "fall-through rejected" (Some K.Errno.EACCES) r.Exec.calls.(0);
  check_errno "empty rejected" (Some K.Errno.EINVAL) r.Exec.calls.(1);
  check_ok "verified" r.Exec.calls.(2)

let test_prog_attach_lifecycle () =
  let r =
    run
      (prog
         [
           prog_load 4;
           call "socket$udp" [ i 2L; i 2L; i 17L ];
           call "open" [ s "/etc/passwd"; i 0L; i 0L ];
           call "bpf$PROG_ATTACH" [ i 8L; r 0; r 2; i 0L ]; (* not a socket *)
           call "bpf$PROG_DETACH" [ i 9L; r 0 ];
           call "bpf$PROG_ATTACH" [ i 8L; r 0; r 1; i 0L ];
           call "bpf$PROG_ATTACH" [ i 8L; r 0; r 1; i 0L ];
           call "bpf$PROG_TEST_RUN" [ i 10L; r 0; buf 64; iv 64 ];
           call "bpf$PROG_DETACH" [ i 9L; r 0 ];
         ])
  in
  check_errno "attach to file" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_errno "detach unattached" (Some K.Errno.ENOENT) r.Exec.calls.(4);
  check_ok "attach" r.Exec.calls.(5);
  check_errno "double attach" (Some K.Errno.EBUSY) r.Exec.calls.(6);
  check_ok "test run while attached" r.Exec.calls.(7);
  check_ok "detach" r.Exec.calls.(8)

let test_prog_test_run_paths () =
  (* Attached and detached programs run through different paths. *)
  let base = [ prog_load 4; call "socket$udp" [ i 2L; i 2L; i 17L ] ] in
  let detached =
    run (prog (base @ [ call "bpf$PROG_TEST_RUN" [ i 10L; r 0; buf 64; iv 64 ] ]))
  in
  let attached =
    run
      (prog
         (base
         @ [
             call "bpf$PROG_ATTACH" [ i 8L; r 0; r 1; i 0L ];
             call "bpf$PROG_TEST_RUN" [ i 10L; r 0; buf 64; iv 64 ];
           ]))
  in
  check_ok "detached run" detached.Exec.calls.(2);
  check_ok "attached run" attached.Exec.calls.(3);
  Alcotest.(check bool) "attachment changes the path" false
    (Exec.cov_equal detached.Exec.calls.(2).Exec.cov attached.Exec.calls.(3).Exec.cov)

(* ---- inotify ---- *)

let test_inotify_watch_lifecycle () =
  let r =
    run
      (prog
         [
           call "inotify_init" [ i 0L ];
           call "inotify_add_watch" [ r 0; s "/tmp/missing"; i 0x2L ];
           call "inotify_add_watch" [ r 0; s "/etc/passwd"; i 0L ];
           call "inotify_add_watch" [ r 0; s "/etc/passwd"; i 0x2L ];
           call "inotify_rm_watch" [ r 0; r 3 ];
           call "inotify_rm_watch" [ r 0; r 3 ];
         ])
  in
  check_errno "missing path" (Some K.Errno.ENOENT) r.Exec.calls.(1);
  check_errno "zero mask" (Some K.Errno.EINVAL) r.Exec.calls.(2);
  check_ok "add" r.Exec.calls.(3);
  check_ok "rm" r.Exec.calls.(4);
  check_errno "double rm" (Some K.Errno.EINVAL) r.Exec.calls.(5)

let test_inotify_sees_writes () =
  let r =
    run
      (prog
         [
           call "inotify_init" [ i 0L ];
           call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
           call "inotify_add_watch" [ r 0; s "/tmp/f0"; i 0x2L ];
           call "read" [ r 0; buf 64; iv 64 ]; (* quiet *)
           call "write" [ r 1; buf 32; iv 32 ];
           call "read" [ r 0; buf 64; iv 64 ]; (* one IN_MODIFY *)
           call "read" [ r 0; buf 64; iv 64 ]; (* quiet again *)
         ])
  in
  check_errno "no events yet" (Some K.Errno.EAGAIN) r.Exec.calls.(3);
  Alcotest.(check int64) "one event" 16L r.Exec.calls.(5).Exec.retval;
  check_errno "snapshot refreshed" (Some K.Errno.EAGAIN) r.Exec.calls.(6)

let test_inotify_sees_unlink () =
  let r =
    run
      (prog
         [
           call "inotify_init" [ i 0L ];
           call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
           call "inotify_add_watch" [ r 0; s "/tmp/f0"; i 0xfffL ];
           call "unlink" [ s "/tmp/f0" ];
           call "read" [ r 0; buf 64; iv 64 ];
         ])
  in
  Alcotest.(check int64) "delete event" 16L r.Exec.calls.(4).Exec.retval

let test_inotify_relation_learnable () =
  (* write -> inotify-read is exactly the cross-subsystem influence
     dynamic learning exists for: the same read covers different
     branches with and without the intervening write. *)
  let base =
    [
      call "inotify_init" [ i 0L ];
      call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
      call "inotify_add_watch" [ r 0; s "/tmp/f0"; i 0x2L ];
    ]
  in
  let quiet = run (prog (base @ [ call "read" [ r 0; buf 64; iv 64 ] ])) in
  let active =
    run
      (prog
         (base
         @ [ call "write" [ r 1; buf 32; iv 32 ]; call "read" [ r 0; buf 64; iv 64 ] ]))
  in
  Alcotest.(check bool) "read path differs" false
    (Exec.cov_equal quiet.Exec.calls.(3).Exec.cov active.Exec.calls.(4).Exec.cov)

let suite =
  [
    case "bpf map lifecycle" test_map_lifecycle;
    case "bpf map validation" test_map_validation;
    case "bpf map freeze" test_map_freeze;
    case "bpf verifier gate" test_prog_verifier;
    case "bpf attach lifecycle" test_prog_attach_lifecycle;
    case "bpf test-run paths" test_prog_test_run_paths;
    case "inotify watch lifecycle" test_inotify_watch_lifecycle;
    case "inotify sees writes" test_inotify_sees_writes;
    case "inotify sees unlink" test_inotify_sees_unlink;
    case "inotify relation learnable" test_inotify_relation_learnable;
  ]
