(* The Syzkaller choice-table and Moonshine distillation baselines. *)

module Prog = Healer_executor.Prog
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
open Healer_core
open Helpers

let id name = (Target.find_exn (tgt ()) name).Syscall.id

(* ---- choice table ---- *)

let test_choice_weight_range () =
  let ct = Choice_table.create (tgt ()) in
  let n = Target.n_syscalls (tgt ()) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let w = Choice_table.weight ct i j in
      if w < 0 || w > 1000 then
        Alcotest.fail (Printf.sprintf "weight out of range: P(%d,%d)=%d" i j w)
    done
  done

let test_choice_coarseness () =
  (* The paper's critique: common *type classes* cannot distinguish a
     real influence pair from a spurious one. Both pairs below share
     "has a resource", so their static weights are equal. *)
  let ct = Choice_table.create (tgt ()) in
  let w_real = Choice_table.weight ct (id "ioctl$KVM_CREATE_VCPU") (id "ioctl$KVM_RUN") in
  let w_spurious = Choice_table.weight ct (id "read") (id "listen") in
  Alcotest.(check int) "choice table cannot tell them apart" w_real w_spurious

let test_choice_resourceless_low () =
  let ct = Choice_table.create (tgt ()) in
  let w_compat = Choice_table.weight ct (id "prctl$PR_SET_NAME") (id "ioctl$KVM_RUN") in
  let w_res = Choice_table.weight ct (id "openat$kvm") (id "ioctl$KVM_RUN") in
  Alcotest.(check bool) "resourceless pairs score lower" true (w_compat < w_res)

let test_choice_dynamic_part () =
  let ct = Choice_table.create (tgt ()) in
  let p =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "listen" [ r 0; iv 8 ];
      ]
  in
  let before = Choice_table.weight ct (id "socket$tcp") (id "listen") in
  for _ = 1 to 50 do
    Choice_table.note_corpus_program ct p
  done;
  let after = Choice_table.weight ct (id "socket$tcp") (id "listen") in
  Alcotest.(check bool) "adjacency counts raise P1" true (after > before)

let test_choice_select () =
  let ct = Choice_table.create (tgt ()) in
  let rng = rng () in
  let n = Target.n_syscalls (tgt ()) in
  for _ = 1 to 100 do
    let v = Choice_table.select rng ct ~bias:None in
    if v < 0 || v >= n then Alcotest.fail "select out of range";
    let v = Choice_table.select rng ct ~bias:(Some (id "socket$tcp")) in
    if v < 0 || v >= n then Alcotest.fail "biased select out of range"
  done

(* ---- distillation ---- *)

let test_dependencies_resource_flow () =
  let p =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "prctl$PR_SET_NAME" [ i 1L; i 2L ];
        call "listen" [ r 0; iv 8 ];
      ]
  in
  let deps = Distill.dependencies p 2 in
  Alcotest.(check bool) "listen depends on socket" true (List.mem 0 deps);
  Alcotest.(check bool) "not on the prctl noise" false (List.mem 1 deps)

let test_dependencies_shared_subsystem () =
  let p =
    prog
      [
        call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ];
        call "ioctl$FBIOPAN_DISPLAY" [ r 0; i 0x4606L; group [ i 0L; i 0L; i 0L; i 0L ] ];
      ]
  in
  (* Same subsystem implies a read-write dependency over-approximation. *)
  Alcotest.(check (list int)) "fb pan depends on open" [ 0 ]
    (Distill.dependencies p 1)

let test_slice_runnable () =
  let p =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "prctl$PR_SET_NAME" [ i 1L; i 2L ];
        call "listen" [ r 0; iv 8 ];
      ]
  in
  let slice = Distill.slice p 2 in
  Alcotest.(check int) "noise removed" 2 (Prog.length slice);
  Alcotest.(check bool) "well formed" true (Prog.well_formed slice);
  let result = run slice in
  Alcotest.(check int) "runs" 2 (Array.length result.Healer_executor.Exec.calls)

let test_distill_filters_and_dedups () =
  let trace =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "prctl$PR_SET_NAME" [ i 1L; i 2L ];
        call "listen" [ r 0; iv 8 ];
      ]
  in
  let seeds = Distill.distill [ trace; trace ] in
  (* Identical traces collapse; the isolated prctl is dropped. *)
  List.iter
    (fun seed ->
      for k = 0 to Prog.length seed - 1 do
        if (Prog.call seed k).Prog.syscall.Syscall.base = "prctl$PR_SET_NAME" then
          Alcotest.fail "noise survived distillation"
      done)
    seeds;
  let keys = List.map Healer_executor.Serializer.encode seeds in
  Alcotest.(check int) "deduplicated"
    (List.length (List.sort_uniq compare keys))
    (List.length keys)

(* ---- seed corpus ---- *)

let test_seed_traces () =
  let traces = Seeds.traces (tgt ()) in
  Alcotest.(check bool) "plenty of traces" true (List.length traces >= 20);
  List.iter
    (fun t ->
      if not (Prog.well_formed t) then Alcotest.fail "trace not well-formed")
    traces

let test_seed_traces_deterministic () =
  let a = Seeds.traces ~seed:3 (tgt ()) and b = Seeds.traces ~seed:3 (tgt ()) in
  Alcotest.(check (list string)) "same traces for same seed"
    (List.map Healer_executor.Serializer.encode a)
    (List.map Healer_executor.Serializer.encode b)

let test_distilled_seeds () =
  let traces = Seeds.traces (tgt ()) in
  let seeds = Seeds.distilled (tgt ()) in
  Alcotest.(check bool) "non-empty" true (List.length seeds > 0);
  (* Distillation output is runnable. *)
  List.iter (fun seed -> ignore (run seed)) seeds;
  (* Each distilled seed is a slice of one trace, so it can never be
     longer than the longest trace. *)
  let max_len ps = List.fold_left (fun acc p -> max acc (Prog.length p)) 0 ps in
  Alcotest.(check bool) "seeds bounded by trace length" true
    (max_len seeds <= max_len traces);
  Alcotest.(check bool) "no trivial seeds" true
    (List.for_all (fun p -> Prog.length p >= 2) seeds)

let suite =
  [
    case "choice weights in range" test_choice_weight_range;
    case "choice coarseness (paper critique)" test_choice_coarseness;
    case "choice resourceless low" test_choice_resourceless_low;
    case "choice dynamic part" test_choice_dynamic_part;
    case "choice select" test_choice_select;
    case "deps: resource flow" test_dependencies_resource_flow;
    case "deps: shared subsystem" test_dependencies_shared_subsystem;
    case "slice runnable" test_slice_runnable;
    case "distill filters + dedups" test_distill_filters_and_dedups;
    case "seed traces" test_seed_traces;
    case "seed traces deterministic" test_seed_traces_deterministic;
    case "distilled seeds" test_distilled_seeds;
  ]
