(* Shared helpers for driving the simulated kernel in tests. *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
module Prog = Healer_executor.Prog
module Value = Healer_executor.Value
module Exec = Healer_executor.Exec

let target = lazy (K.Kernel.target ())
let tgt () = Lazy.force target

(* Build a call by name with explicit argument values. *)
let call name args =
  { Prog.syscall = Target.find_exn (tgt ()) name; args }

let prog calls = Prog.of_list calls

let boot ?(version = K.Version.V5_11) ?(san = K.Sanitizer.default)
    ?(features = []) () =
  K.Kernel.boot ~san ~features ~version ()

let run ?version ?san ?features ?fault_call p =
  let kernel = boot ?version ?san ?features () in
  snd (Exec.run ?fault_call kernel p)

(* Common value shorthands. *)
let i v = Value.Int v
let iv v = Value.Int (Int64.of_int v)
let r idx = Value.Res_ref idx
let s str = Value.Str str
let buf n = Value.Buf (Bytes.make n 'x')
let ptr v = Value.Ptr v
let group vs = Value.Ptr (Value.Group vs)
let vma = Value.Vma 0x20000000L

let errno_of (res : Exec.call_result) = res.Exec.errno

let check_errno what expected (res : Exec.call_result) =
  Alcotest.(check (option string))
    what
    (Option.map K.Errno.to_string expected)
    (Option.map K.Errno.to_string res.Exec.errno)

let check_ok what (res : Exec.call_result) = check_errno what None res

let crash_key (r : Exec.run_result) =
  Option.map (fun (c : K.Crash.report) -> c.K.Crash.bug_key) r.Exec.crash

let check_crash what expected (r : Exec.run_result) =
  Alcotest.(check (option string)) what expected (crash_key r)

(* A deterministic RNG for generation-based tests. *)
let rng ?(seed = 42) () = Healer_util.Rng.create seed

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  (* Fixed generator state: property failures must be reproducible. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x4EA1; count |])
    (QCheck2.Test.make ~name ~count gen prop)
