(* IPC subsystem: eventfd/timerfd semantics and SysV object
   lifecycles. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let test_eventfd_counter () =
  let r =
    run
      (prog
         [
           call "eventfd" [ i 0L ];
           call "read" [ r 0; buf 8; iv 8 ];
           call "write" [ r 0; buf 8; iv 8 ];
           call "read" [ r 0; buf 8; iv 8 ];
           call "read" [ r 0; buf 8; iv 8 ];
           call "read" [ r 0; buf 4; iv 4 ];
         ])
  in
  check_errno "empty counter" (Some K.Errno.EAGAIN) r.Exec.calls.(1);
  check_ok "signal" r.Exec.calls.(2);
  check_ok "consume" r.Exec.calls.(3);
  check_errno "consumed" (Some K.Errno.EAGAIN) r.Exec.calls.(4);
  check_errno "short read" (Some K.Errno.EINVAL) r.Exec.calls.(5)

let test_eventfd_initval () =
  let r =
    run (prog [ call "eventfd" [ iv 3 ]; call "read" [ r 0; buf 8; iv 8 ] ])
  in
  check_ok "initval readable" r.Exec.calls.(1)

let test_timerfd () =
  let spec v = group [ i v; i v ] in
  let r =
    run
      (prog
         [
           call "timerfd_create" [ i 1L; i 0L ];
           call "read" [ r 0; buf 8; iv 8 ];
           call "timerfd_settime" [ r 0; i 0L; spec 100L ];
           call "read" [ r 0; buf 8; iv 8 ];
           call "timerfd_settime" [ r 0; i 0L; spec 0L ];
           call "read" [ r 0; buf 8; iv 8 ];
           call "timerfd_create" [ iv 99; i 0L ];
         ])
  in
  check_errno "unarmed" (Some K.Errno.EAGAIN) r.Exec.calls.(1);
  check_ok "armed read" r.Exec.calls.(3);
  check_errno "disarmed" (Some K.Errno.EAGAIN) r.Exec.calls.(5);
  check_errno "bad clock" (Some K.Errno.EINVAL) r.Exec.calls.(6)

let test_shm_lifecycle () =
  let r =
    run
      (prog
         [
           call "shmget" [ i 1L; iv 4096; i 0L ];
           call "shmat" [ r 0; vma; i 0L ];
           call "shmdt" [ r 0 ];
           call "shmdt" [ r 0 ];
           call "shmctl$IPC_RMID" [ r 0; i 0L ];
           call "shmat" [ r 0; vma; i 0L ];
         ])
  in
  check_ok "attach" r.Exec.calls.(1);
  check_ok "detach" r.Exec.calls.(2);
  check_errno "detach when unattached" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_ok "rmid" r.Exec.calls.(4);
  check_errno "attach after destroy" (Some K.Errno.EINVAL) r.Exec.calls.(5)

let test_shm_deferred_destroy () =
  let r =
    run
      (prog
         [
           call "shmget" [ i 1L; iv 4096; i 0L ];
           call "shmat" [ r 0; vma; i 0L ];
           call "shmctl$IPC_RMID" [ r 0; i 0L ];
           call "shmat" [ r 0; vma; i 0L ]; (* pending: new attach refused *)
           call "shmdt" [ r 0 ]; (* last detach completes destruction *)
           call "shmdt" [ r 0 ];
         ])
  in
  check_ok "rmid while attached" r.Exec.calls.(2);
  check_errno "attach while pending" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_ok "final detach" r.Exec.calls.(4);
  check_errno "object gone" (Some K.Errno.EINVAL) r.Exec.calls.(5)

let test_shmget_validation () =
  let r =
    run (prog [ call "shmget" [ i 1L; i 0L; i 0L ] ])
  in
  check_errno "zero size" (Some K.Errno.EINVAL) r.Exec.calls.(0)

let test_sem_counters () =
  let op num delta = group [ iv num; iv delta; i 0L ] in
  let r =
    run
      (prog
         [
           call "semget" [ i 1L; iv 2; i 0L ];
           call "semop" [ r 0; op 0 1; i 1L ];
           call "semop" [ r 0; op 0 (-1); i 1L ];
           call "semop" [ r 0; op 0 (-1); i 1L ]; (* would block *)
           call "semop" [ r 0; op 5 1; i 1L ]; (* index out of range *)
           call "semctl$IPC_RMID" [ r 0; i 0L; i 0L ];
           call "semop" [ r 0; op 0 1; i 1L ];
         ])
  in
  check_ok "up" r.Exec.calls.(1);
  check_ok "down" r.Exec.calls.(2);
  check_errno "would block" (Some K.Errno.EAGAIN) r.Exec.calls.(3);
  check_errno "bad index" (Some K.Errno.EINVAL) r.Exec.calls.(4);
  check_errno "after rmid" (Some K.Errno.EINVAL) r.Exec.calls.(6)

let test_msgq_flow () =
  let r =
    run
      (prog
         [
           call "msgget" [ i 1L; i 0L ];
           call "msgrcv" [ r 0; buf 16; iv 16; i 0L; i 0L ];
           call "msgsnd" [ r 0; buf 16; iv 16; i 0L ];
           call "msgsnd" [ r 0; buf 0; i 0L; i 0L ];
           call "msgrcv" [ r 0; buf 16; iv 16; i 0L; i 0L ];
           call "msgctl$IPC_RMID" [ r 0; i 0L ];
           call "msgsnd" [ r 0; buf 16; iv 16; i 0L ];
         ])
  in
  check_errno "empty queue" (Some K.Errno.EAGAIN) r.Exec.calls.(1);
  check_ok "send" r.Exec.calls.(2);
  check_errno "empty message" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_ok "receive" r.Exec.calls.(4);
  check_errno "after rmid" (Some K.Errno.EINVAL) r.Exec.calls.(6)

let test_ids_are_not_fds () =
  (* A shm id is not an fd: read on it fails with EBADF, and the id
     space is separate from the descriptor numbers. *)
  let r =
    run
      (prog
         [
           call "shmget" [ i 1L; iv 4096; i 0L ];
           call "read" [ r 0; buf 8; iv 8 ];
         ])
  in
  check_errno "not a descriptor" (Some K.Errno.EBADF) r.Exec.calls.(1)

let test_static_relations_cover_ipc () =
  let target = tgt () in
  let table = Healer_core.Static_learning.initial_table target in
  let id name = (Healer_syzlang.Target.find_exn target name).Healer_syzlang.Syscall.id in
  Alcotest.(check bool) "shmget -> shmat" true
    (Healer_core.Relation_table.get table (id "shmget") (id "shmat"));
  Alcotest.(check bool) "semget -> semop" true
    (Healer_core.Relation_table.get table (id "semget") (id "semop"));
  Alcotest.(check bool) "msgget -> msgrcv" true
    (Healer_core.Relation_table.get table (id "msgget") (id "msgrcv"))

let suite =
  [
    case "eventfd counter" test_eventfd_counter;
    case "eventfd initval" test_eventfd_initval;
    case "timerfd arm/disarm" test_timerfd;
    case "shm lifecycle" test_shm_lifecycle;
    case "shm deferred destroy" test_shm_deferred_destroy;
    case "shmget validation" test_shmget_validation;
    case "sem counters" test_sem_counters;
    case "msgq flow" test_msgq_flow;
    case "ids are not fds" test_ids_are_not_fds;
    case "static relations cover ipc" test_static_relations_cover_ipc;
  ]
