(* Value generation, program building, guided generation/mutation and
   the corpus. *)

module Prog = Healer_executor.Prog
module Value = Healer_executor.Value
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Ty = Healer_syzlang.Ty
module Rng = Healer_util.Rng
open Healer_core
open Helpers

let no_producers = fun _ -> []
let vctx ?(producers = no_producers) () = { Value_gen.target = tgt (); producers }

let test_gen_args_arity =
  qcheck ~count:100 "generated args match arity" QCheck2.Gen.small_int (fun seed ->
      let rng = Rng.create seed in
      let ctx = vctx () in
      Array.for_all
        (fun (c : Syscall.t) ->
          List.length (Value_gen.gen_args rng ctx c) = List.length c.Syscall.args)
        (Target.syscalls (tgt ())))

let test_gen_const_preserved () =
  let rng = rng () in
  let c = Target.find_exn (tgt ()) "ioctl$KVM_RUN" in
  for _ = 1 to 20 do
    match Value_gen.gen_args rng (vctx ()) c with
    | [ _; Value.Int 0xae80L ] -> ()
    | _ -> Alcotest.fail "const argument must be the declared constant"
  done

let test_gen_len_resolved () =
  let rng = rng () in
  let c = Target.find_exn (tgt ()) "write" in
  for _ = 1 to 50 do
    match Value_gen.gen_args rng (vctx ()) c with
    | [ _; buf_v; Value.Int len ] ->
      Alcotest.(check int64) "len matches buffer size"
        (Int64.of_int (Value_gen.size_of_value buf_v))
        len
    | _ -> Alcotest.fail "unexpected shape for write args"
  done

let test_gen_resource_wiring () =
  let rng = rng () in
  let ctx = vctx ~producers:(fun kind -> if kind = "fd" then [ 3 ] else []) () in
  let c = Target.find_exn (tgt ()) "close" in
  let wired = ref 0 in
  for _ = 1 to 100 do
    match Value_gen.gen_args rng ctx c with
    | [ Value.Res_ref 3 ] -> incr wired
    | [ _ ] -> ()
    | _ -> Alcotest.fail "close takes one argument"
  done;
  Alcotest.(check bool) "mostly wired to the producer" true (!wired > 70)

let test_gen_resource_without_producer () =
  let rng = rng () in
  let c = Target.find_exn (tgt ()) "close" in
  for _ = 1 to 50 do
    match Value_gen.gen_args rng (vctx ()) c with
    | [ Value.Res_ref _ ] -> Alcotest.fail "no producer exists to reference"
    | [ _ ] -> ()
    | _ -> Alcotest.fail "arity"
  done

let test_mutate_args_arity =
  qcheck ~count:100 "mutation preserves arity" QCheck2.Gen.small_int (fun seed ->
      let rng = Rng.create seed in
      let ctx = vctx () in
      Array.for_all
        (fun (c : Syscall.t) ->
          let args = Value_gen.gen_args rng ctx c in
          List.length (Value_gen.mutate_args rng ctx c args)
          = List.length c.Syscall.args)
        (Target.syscalls (tgt ())))

let test_mutate_const_stable () =
  let rng = rng () in
  let ctx = vctx () in
  let c = Target.find_exn (tgt ()) "ioctl$KVM_CREATE_VM" in
  let args = Value_gen.gen_args rng ctx c in
  for _ = 1 to 30 do
    match Value_gen.mutate_args rng ctx c args with
    | [ _; Value.Int 0xae01L ] -> ()
    | _ -> Alcotest.fail "const must survive mutation"
  done

(* ---- builder ---- *)

let test_builder_ensures_producers () =
  let rng = rng () in
  let run_call = Target.find_exn (tgt ()) "ioctl$KVM_RUN" in
  let p = Builder.insert_call rng (tgt ()) Prog.empty ~at:0 run_call in
  Alcotest.(check bool) "well formed" true (Prog.well_formed p);
  let names =
    List.init (Prog.length p) (fun k -> (Prog.call p k).Prog.syscall.Syscall.name)
  in
  (* KVM_RUN needs a vcpu, which needs a vm, which needs /dev/kvm. *)
  Alcotest.(check bool) "vcpu producer inserted" true
    (List.mem "ioctl$KVM_CREATE_VCPU" names);
  Alcotest.(check bool) "vm producer inserted" true
    (List.mem "ioctl$KVM_CREATE_VM" names);
  Alcotest.(check bool) "run is last" true
    (List.nth names (List.length names - 1) = "ioctl$KVM_RUN")

let test_builder_reuses_existing_producer () =
  let rng = rng () in
  let p = Builder.append_call rng (tgt ()) Prog.empty (Target.find_exn (tgt ()) "socket$tcp") in
  let p = Builder.append_call rng (tgt ()) p (Target.find_exn (tgt ()) "listen") in
  (* listen should reference the existing socket, not insert another. *)
  let sockets =
    List.length
      (List.filter
         (fun k -> (Prog.call p k).Prog.syscall.Syscall.name = "socket$tcp")
         (List.init (Prog.length p) (fun k -> k)))
  in
  Alcotest.(check int) "one socket" 1 sockets

let test_builder_length_cap =
  qcheck ~count:50 "builder respects max length" QCheck2.Gen.small_int (fun seed ->
      let rng = Rng.create seed in
      let calls = Target.syscalls (tgt ()) in
      let p = ref Prog.empty in
      for _ = 1 to 100 do
        p := Builder.append_call rng (tgt ()) !p calls.(Rng.int rng (Array.length calls))
      done;
      Prog.length !p <= Builder.max_prog_len)

(* ---- generation and mutation ---- *)

let random_select rng ~sub:_ = Rng.int rng (Target.n_syscalls (tgt ()))

let test_generate_well_formed =
  qcheck ~count:200 "generated programs well-formed" QCheck2.Gen.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let p = Gen.generate rng (tgt ()) ~select:(random_select rng) () in
      Prog.length p > 0 && Prog.well_formed p && Prog.length p <= Builder.max_prog_len)

let test_generate_runs_cleanly =
  qcheck ~count:100 "generated programs execute" QCheck2.Gen.small_int (fun seed ->
      let rng = Rng.create seed in
      let p = Gen.generate rng (tgt ()) ~select:(random_select rng) () in
      let result = run p in
      Array.length result.Healer_executor.Exec.calls = Prog.length p)

let test_mutate_well_formed =
  qcheck ~count:200 "mutated programs well-formed" QCheck2.Gen.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let p = Gen.generate rng (tgt ()) ~select:(random_select rng) () in
      let q = Mutate.mutate rng (tgt ()) ~select:(random_select rng) p in
      Prog.length q > 0 && Prog.well_formed q)

let test_gen_syscall_ids () =
  let p =
    prog [ call "socket$tcp" [ i 2L; i 1L; i 6L ]; call "listen" [ r 0; iv 1 ] ]
  in
  let ids = Gen.syscall_ids p ~upto:2 in
  Alcotest.(check (list int)) "ids in order"
    [ (Target.find_exn (tgt ()) "socket$tcp").Syscall.id;
      (Target.find_exn (tgt ()) "listen").Syscall.id ]
    ids;
  Alcotest.(check int) "upto truncates" 1 (List.length (Gen.syscall_ids p ~upto:1))

(* ---- corpus ---- *)

let test_corpus_dedup () =
  let c = Corpus.create (tgt ()) in
  let p = prog [ call "socket$tcp" [ i 2L; i 1L; i 6L ] ] in
  Alcotest.(check bool) "first add" true (Corpus.add c p ~new_blocks:3);
  Alcotest.(check bool) "duplicate rejected" false (Corpus.add c p ~new_blocks:5);
  Alcotest.(check bool) "empty rejected" false (Corpus.add c Prog.empty ~new_blocks:1);
  Alcotest.(check int) "size" 1 (Corpus.size c)

let test_corpus_pick_and_histogram () =
  let c = Corpus.create (tgt ()) in
  Alcotest.(check (option unit)) "empty pick" None
    (Option.map ignore (Corpus.pick (rng ()) c));
  let mk ?(tag = 0) n =
    prog
      (call "socket$tcp" [ i 2L; i 1L; iv tag ]
      :: List.init (n - 1) (fun _ -> call "listen" [ r 0; iv 1 ]))
  in
  List.iter
    (fun (tag, n) -> ignore (Corpus.add c (mk ~tag n) ~new_blocks:n))
    [ (0, 1); (1, 2); (2, 2); (3, 3); (4, 6) ];
  Alcotest.(check int) "size" 5 (Corpus.size c);
  Alcotest.(check (list (pair string int)))
    "histogram"
    [ ("1", 1); ("2", 2); ("3", 1); ("4", 0); ("5+", 1) ]
    (Corpus.length_histogram c);
  Alcotest.(check (float 1e-9)) "frac >=3" 0.4 (Corpus.frac_len_at_least c 3);
  match Corpus.pick (rng ()) c with
  | Some p -> Alcotest.(check bool) "picked member" true (Prog.length p >= 1)
  | None -> Alcotest.fail "non-empty corpus must pick"

let suite =
  [
    test_gen_args_arity;
    case "const preserved" test_gen_const_preserved;
    case "len resolved" test_gen_len_resolved;
    case "resource wiring" test_gen_resource_wiring;
    case "resource without producer" test_gen_resource_without_producer;
    test_mutate_args_arity;
    case "const stable under mutation" test_mutate_const_stable;
    case "builder inserts producer chain" test_builder_ensures_producers;
    case "builder reuses producers" test_builder_reuses_existing_producer;
    test_builder_length_cap;
    test_generate_well_formed;
    test_generate_runs_cleanly;
    test_mutate_well_formed;
    case "gen syscall_ids" test_gen_syscall_ids;
    case "corpus dedup" test_corpus_dedup;
    case "corpus pick/histogram" test_corpus_pick_and_histogram;
  ]
