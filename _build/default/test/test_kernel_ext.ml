(* The extended interface surface: positional IO, directories, rename,
   flock and fcntl in vfs; socket options, accept4, sendmsg; KVM
   register/NMI/TSS/dirty-log paths. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let sockaddr = group [ i 2L; i 80L; i 1L ]

let test_pread_pwrite () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
           call "pwrite" [ r 0; buf 100; iv 100; iv 50 ];
           call "pread" [ r 0; buf 100; iv 100; iv 50 ];
           call "pread" [ r 0; buf 100; iv 100; iv 500 ];
           call "pread" [ r 0; buf 100; iv 100; iv (-1) ];
           call "read" [ r 0; buf 10; iv 10 ];
         ])
  in
  Alcotest.(check int64) "pwrite extends" 100L r.Exec.calls.(1).Exec.retval;
  Alcotest.(check int64) "pread at offset" 100L r.Exec.calls.(2).Exec.retval;
  Alcotest.(check int64) "pread past EOF" 0L r.Exec.calls.(3).Exec.retval;
  check_errno "negative offset" (Some K.Errno.EINVAL) r.Exec.calls.(4);
  (* pread/pwrite never moved the descriptor offset. *)
  Alcotest.(check int64) "offset untouched" 10L r.Exec.calls.(5).Exec.retval

let test_mkdir_rmdir () =
  let r =
    run
      (prog
         [
           call "mkdir" [ s "/tmp/d0"; i 0x1ffL ];
           call "mkdir" [ s "/tmp/d0"; i 0x1ffL ];
           call "rmdir" [ s "/tmp/d0" ];
           call "rmdir" [ s "/tmp/d0" ];
           call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
           call "rmdir" [ s "/tmp/f0" ];
         ])
  in
  check_ok "mkdir" r.Exec.calls.(0);
  check_errno "mkdir exists" (Some K.Errno.EEXIST) r.Exec.calls.(1);
  check_ok "rmdir" r.Exec.calls.(2);
  check_errno "rmdir gone" (Some K.Errno.ENOENT) r.Exec.calls.(3);
  Alcotest.(check bool) "rmdir on a file fails" true
    (r.Exec.calls.(5).Exec.errno <> None)

let test_rename_semantics () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
           call "write" [ r 0; buf 77; iv 77 ];
           call "rename" [ s "/tmp/f0"; s "/tmp/r0" ];
           call "open" [ s "/tmp/f0"; i 0L; i 0L ];
           call "open" [ s "/tmp/r0"; i 0L; i 0L ];
           call "read" [ r 4; buf 100; iv 100 ];
           call "rename" [ s "/tmp/nope"; s "/tmp/r0" ];
         ])
  in
  check_ok "rename" r.Exec.calls.(2);
  check_errno "old name gone" (Some K.Errno.ENOENT) r.Exec.calls.(3);
  check_ok "new name opens" r.Exec.calls.(4);
  Alcotest.(check int64) "data travelled" 77L r.Exec.calls.(5).Exec.retval;
  check_errno "missing source" (Some K.Errno.ENOENT) r.Exec.calls.(6)

let test_flock () =
  let r =
    run
      (prog
         [
           call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
           call "open" [ s "/tmp/f0"; i 0L; i 0L ];
           call "flock" [ r 0; i 2L ]; (* EX *)
           call "flock" [ r 1; i 2L ]; (* EX conflicts *)
           call "flock" [ r 1; i 1L ]; (* SH conflicts *)
           call "flock" [ r 0; i 8L ]; (* UN *)
           call "flock" [ r 1; i 1L ]; (* SH ok now *)
           call "flock" [ r 0; iv 5 ];
         ])
  in
  check_ok "exclusive" r.Exec.calls.(2);
  check_errno "second exclusive" (Some K.Errno.EAGAIN) r.Exec.calls.(3);
  check_errno "shared vs exclusive" (Some K.Errno.EAGAIN) r.Exec.calls.(4);
  check_ok "unlock" r.Exec.calls.(5);
  check_ok "shared" r.Exec.calls.(6);
  check_errno "bad op" (Some K.Errno.EINVAL) r.Exec.calls.(7)

let test_fcntl_fl () =
  let r =
    run
      (prog
         [
           call "open" [ s "/etc/passwd"; i 2L; i 0L ];
           call "fcntl$GETFL" [ r 0; i 3L ];
           call "fcntl$SETFL" [ r 0; i 4L; i 0x800L ];
           call "fcntl$GETFL" [ r 0; i 3L ];
         ])
  in
  Alcotest.(check int64) "initial flags" 2L r.Exec.calls.(1).Exec.retval;
  (* SETFL keeps the access mode and applies the status bits. *)
  Alcotest.(check int64) "after SETFL" 0x802L r.Exec.calls.(3).Exec.retval

let test_sock_options () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "setsockopt$SO_RCVBUF" [ r 0; i 1L; i 8L; group [ iv 100 ] ];
           call "setsockopt$SO_KEEPALIVE" [ r 0; i 1L; i 9L; group [ i 1L ] ];
           call "socket$udp" [ i 2L; i 2L; i 17L ];
           call "setsockopt$SO_KEEPALIVE" [ r 3; i 1L; i 9L; group [ i 1L ] ];
           call "getsockopt$SO_ERROR" [ r 0; i 1L; i 4L; group [ i 0L ] ];
           call "ioctl$FIONREAD" [ r 0; i 0x541bL; group [ i 0L ] ];
         ])
  in
  check_ok "rcvbuf" r.Exec.calls.(1);
  check_ok "keepalive on tcp" r.Exec.calls.(2);
  check_errno "keepalive on udp" (Some K.Errno.EOPNOTSUPP) r.Exec.calls.(4);
  Alcotest.(check int64) "no pending error" 0L r.Exec.calls.(5).Exec.retval;
  check_ok "fionread" r.Exec.calls.(6)

let test_so_error_latching () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "connect" [ r 0; sockaddr ];
           call "shutdown" [ r 0; i 1L ];
           call "sendmsg"
             [ r 0; group [ Value.Group [ Value.Group [ vma; i 16L ] ]; i 0L ];
               i 0L ];
           call "getsockopt$SO_ERROR" [ r 0; i 1L; i 4L; group [ i 0L ] ];
           call "getsockopt$SO_ERROR" [ r 0; i 1L; i 4L; group [ i 0L ] ];
         ])
  in
  check_errno "sendmsg after shutdown" (Some K.Errno.EPIPE) r.Exec.calls.(3);
  Alcotest.(check int64) "error latched" (Int64.of_int (K.Errno.code K.Errno.EPIPE))
    r.Exec.calls.(4).Exec.retval;
  Alcotest.(check int64) "error cleared on read" 0L r.Exec.calls.(5).Exec.retval

let test_accept4 () =
  let r =
    run
      (prog
         [
           call "socket$tcp" [ i 2L; i 1L; i 6L ];
           call "bind" [ r 0; sockaddr ];
           call "listen" [ r 0; iv 4 ];
           call "accept4" [ r 0; group [ i 0L; i 0L; i 0L ]; i 0x800L ];
           call "accept4" [ r 0; group [ i 0L; i 0L; i 0L ]; i 0x123456L ];
           call "sendto" [ r 3; buf 8; iv 8; i 0L; sockaddr ];
         ])
  in
  check_ok "accept4 NONBLOCK" r.Exec.calls.(3);
  check_errno "bad flags" (Some K.Errno.EINVAL) r.Exec.calls.(4);
  check_ok "peer usable" r.Exec.calls.(5)

let test_sendmsg_iovs () =
  let msg n =
    group
      [ Value.Group (List.init n (fun _ -> Value.Group [ vma; i 16L ])); i 0L ]
  in
  let r =
    run
      (prog
         [
           call "socket$udp" [ i 2L; i 2L; i 17L ];
           call "sendmsg" [ r 0; msg 2; i 0L ];
           call "sendmsg" [ r 0; msg 0; i 0L ];
           call "sendmsg" [ r 0; Value.Null; i 0L ];
         ])
  in
  Alcotest.(check int64) "two iovs" 32L r.Exec.calls.(1).Exec.retval;
  check_errno "zero iovs" (Some K.Errno.EINVAL) r.Exec.calls.(2);
  check_errno "null msg" (Some K.Errno.EFAULT) r.Exec.calls.(3)

(* ---- KVM extensions ---- *)

let kvm_prefix =
  [
    call "openat$kvm" [ i (-100L); s "/dev/kvm"; i 0L ];
    call "ioctl$KVM_CREATE_VM" [ r 0; i 0xae01L ];
    call "ioctl$KVM_CREATE_VCPU" [ r 1; i 0xae41L; i 0L ];
  ]

let test_kvm_regs_and_nmi () =
  let r =
    run
      (prog
         (kvm_prefix
         @ [
             call "ioctl$KVM_SET_REGS" [ r 2; i 0x4090ae82L; group [ i 0x200000L; i 0L; i 2L ] ];
             call "ioctl$KVM_NMI" [ r 2; i 0xae9aL ];
             call "ioctl$KVM_SET_USER_MEMORY_REGION"
               [ r 1; i 0x4020ae46L; group [ i 0L; i 0L; i 0L; i 0x10000L; vma ] ];
             call "ioctl$KVM_RUN" [ r 2; i 0xae80L ];
             call "ioctl$KVM_GET_REGS" [ r 2; i 0x8090ae81L; group [ i 0L; i 0L; i 0L ] ];
           ]))
  in
  check_ok "set regs" r.Exec.calls.(3);
  check_ok "nmi" r.Exec.calls.(4);
  check_ok "run consumes nmi + regs" r.Exec.calls.(6);
  check_ok "get regs" r.Exec.calls.(7)

let test_kvm_tss_addr () =
  let r =
    run
      (prog
         (kvm_prefix
         @ [
             call "ioctl$KVM_SET_TSS_ADDR" [ r 1; i 0xae47L; i 0x1234L ];
             call "ioctl$KVM_SET_TSS_ADDR" [ r 1; i 0xae47L; i 0x10000L ];
             call "ioctl$KVM_SET_TSS_ADDR" [ r 1; i 0xae47L; i 0x20000L ];
           ]))
  in
  check_errno "unaligned" (Some K.Errno.EINVAL) r.Exec.calls.(3);
  check_ok "set" r.Exec.calls.(4);
  check_errno "already set" (Some K.Errno.EEXIST) r.Exec.calls.(5)

let test_kvm_dirty_log () =
  let region ~flags = group [ i 0L; i flags; i 0L; i 0x10000L; vma ] in
  let r =
    run
      (prog
         (kvm_prefix
         @ [
             call "ioctl$KVM_SET_USER_MEMORY_REGION" [ r 1; i 0x4020ae46L; region ~flags:1L ];
             call "ioctl$KVM_GET_DIRTY_LOG" [ r 1; i 0x4010ae42L; group [ i 0L; i 0L; vma ] ];
             call "ioctl$KVM_GET_DIRTY_LOG" [ r 1; i 0x4010ae42L; group [ i 7L; i 0L; vma ] ];
           ]))
  in
  check_ok "dirty log on logged slot" r.Exec.calls.(4);
  check_errno "unlogged slot" (Some K.Errno.ENOENT) r.Exec.calls.(5)

let suite =
  [
    case "pread/pwrite" test_pread_pwrite;
    case "mkdir/rmdir" test_mkdir_rmdir;
    case "rename" test_rename_semantics;
    case "flock" test_flock;
    case "fcntl GETFL/SETFL" test_fcntl_fl;
    case "socket options" test_sock_options;
    case "SO_ERROR latching" test_so_error_latching;
    case "accept4" test_accept4;
    case "sendmsg iovs" test_sendmsg_iovs;
    case "kvm regs + nmi" test_kvm_regs_and_nmi;
    case "kvm tss addr" test_kvm_tss_addr;
    case "kvm dirty log" test_kvm_dirty_log;
  ]
