(* The prefix-caching execution engine: resumed execution must be
   bit-identical to fresh execution, campaigns must not change with
   the cache on or off, and the LRU bounds must hold. *)

module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Exec_cache = Healer_executor.Exec_cache
module Serializer = Healer_executor.Serializer
module Target = Healer_syzlang.Target
module Rng = Healer_util.Rng
module K = Healer_kernel
open Healer_core
open Helpers

let gen_prog seed =
  let rng = Rng.create seed in
  Gen.generate rng (tgt ())
    ~select:(fun ~sub:_ -> Rng.int rng (Target.n_syscalls (tgt ())))
    ()

let same_result what (a : Exec.run_result) (b : Exec.run_result) =
  (match (a.Exec.crash, b.Exec.crash) with
  | None, None -> true
  | Some x, Some y -> x.K.Crash.bug_key = y.K.Crash.bug_key
  | _ -> false)
  && Array.length a.Exec.calls = Array.length b.Exec.calls
  && Array.for_all2
       (fun (x : Exec.call_result) (y : Exec.call_result) ->
         x.Exec.retval = y.Exec.retval
         && x.Exec.errno = y.Exec.errno
         && x.Exec.executed = y.Exec.executed
         && Exec.cov_equal x.Exec.cov y.Exec.cov)
       a.Exec.calls b.Exec.calls
  ||
  (Fmt.epr "mismatch: %s@." what;
   false)

(* run_from with the state+results of a fresh prefix run reproduces a
   full run exactly, for every split point of every generated
   program. *)
let test_run_from_equiv =
  qcheck ~count:100 "run_from ≡ run at every split point"
    QCheck2.Gen.(pair small_int (int_range 0 40))
    (fun (seed, cut) ->
      let p = gen_prog seed in
      let n = Prog.length p in
      let k = if n = 0 then 0 else cut mod (n + 1) in
      let full = run p in
      let kernel = boot () in
      let prefix_crashed =
        k > 0 && (snd (Exec.run kernel (Prog.sub p k))).Exec.crash <> None
      in
      if prefix_crashed then true
        (* A crashed prefix leaves no resumable state — the cache
           never snapshots it either. *)
      else begin
        let kernel, pre =
          if k = 0 then (kernel, [||])
          else
            let kernel, r = Exec.run kernel (Prog.sub p k) in
            (kernel, Array.sub r.Exec.calls 0 k)
        in
        let _, resumed = Exec.run_from ~prefix:pre kernel p in
        same_result "run_from" full resumed
      end)

(* The cache is invisible: for a program, its re-runs and its removal
   variants (minimization's probe shape), cached results equal fresh
   execution — including crashing programs, which always re-crash
   live. Each variant runs twice so the second run resumes from
   snapshots the first already consumed (catches shallow copies). *)
let test_cache_equiv =
  qcheck ~count:60 "cached probe ≡ uncached" QCheck2.Gen.small_int
    (fun seed ->
      let p = gen_prog seed in
      let cache = Exec_cache.create ~version:K.Version.V5_11 () in
      let check q =
        let fresh = run q in
        same_result "first cached run" fresh (Exec_cache.run cache q)
        && same_result "second cached run" fresh (Exec_cache.run cache q)
      in
      let variants =
        if Prog.length p <= 1 then []
        else List.init (Prog.length p) (fun pos -> Prog.remove p pos)
      in
      List.for_all check (p :: variants))

let test_cache_counters () =
  let cache = Exec_cache.create ~version:K.Version.V5_11 () in
  let p =
    prog
      [
        call "open" [ s "/etc/passwd"; i 0L; i 0L ];
        call "read" [ r 0; buf 16; iv 16 ];
        call "close" [ r 0 ];
      ]
  in
  ignore (Exec_cache.run cache p);
  let st = Exec_cache.stats cache in
  Alcotest.(check int) "first run misses" 1 st.Exec_cache.misses;
  Alcotest.(check int) "three live calls" 3 st.Exec_cache.executed_calls;
  ignore (Exec_cache.run cache p);
  Alcotest.(check int) "second run hits" 1 st.Exec_cache.hits;
  Alcotest.(check int) "full hit" 1 st.Exec_cache.full_hits;
  Alcotest.(check int) "all calls resumed" 3 st.Exec_cache.resumed_calls;
  Alcotest.(check int) "nothing re-executed" 3 st.Exec_cache.executed_calls;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Exec_cache.hit_rate cache);
  (* A shorter prefix of the same program resumes mid-path. *)
  ignore (Exec_cache.run cache (Prog.remove p 2));
  Alcotest.(check int) "prefix resumes" 2 st.Exec_cache.hits

let test_cache_lru_eviction () =
  let cache = Exec_cache.create ~capacity:2 ~version:K.Version.V5_11 () in
  let mk path = prog [ call "open" [ s path; i 0L; i 0L ] ] in
  List.iter
    (fun path -> ignore (Exec_cache.run cache (mk path)))
    [ "/etc/passwd"; "/etc/shadow"; "/etc/hosts"; "/tmp/a"; "/tmp/b" ];
  let st = Exec_cache.stats cache in
  Alcotest.(check bool) "snapshots bounded" true (Exec_cache.snapshot_count cache <= 2);
  Alcotest.(check bool) "evicted" true (st.Exec_cache.evictions >= 3);
  (* Evicting a snapshot keeps the node's results: re-runs are still
     full hits, just without a restorable kernel downstream. *)
  ignore (Exec_cache.run cache (mk "/etc/passwd"));
  Alcotest.(check bool) "results survive eviction" true (st.Exec_cache.full_hits >= 1)

let test_cache_flush_at_node_capacity () =
  let cache = Exec_cache.create ~capacity:2 ~node_capacity:4 ~version:K.Version.V5_11 () in
  let mk path = prog [ call "open" [ s path; i 0L; i 0L ] ] in
  List.iter
    (fun path -> ignore (Exec_cache.run cache (mk path)))
    [ "/a"; "/b"; "/c"; "/d"; "/e"; "/f" ];
  let st = Exec_cache.stats cache in
  Alcotest.(check bool) "flushed at least once" true (st.Exec_cache.flushes >= 1);
  Alcotest.(check bool) "trie stays bounded" true (Exec_cache.node_count cache <= 4);
  Exec_cache.clear cache;
  Alcotest.(check int) "clear empties the trie" 0 (Exec_cache.node_count cache);
  Alcotest.(check int) "clear empties snapshots" 0 (Exec_cache.snapshot_count cache)

(* The tentpole acceptance gate: a campaign is a deterministic
   function of its spec, and the cache must not perturb any observable
   — coverage curve, learned relations, crash log, corpus, execs. *)
let test_campaign_identical_cache_on_off () =
  let go exec_cache =
    Campaign.run_one ~hours:0.4 ~seed:5 ~exec_cache ~tool:Fuzzer.Healer
      ~version:K.Version.V5_11 ()
  in
  let on = go true and off = go false in
  Alcotest.(check bool) "cache was exercised" true (on.Campaign.cache_hits > 0);
  Alcotest.(check int) "cache off means no cache" 0 off.Campaign.cache_misses;
  Alcotest.(check int) "final coverage" off.Campaign.final_cov on.Campaign.final_cov;
  Alcotest.(check (list (pair (float 1e-9) int))) "coverage curve"
    off.Campaign.samples on.Campaign.samples;
  Alcotest.(check int) "execs" off.Campaign.execs on.Campaign.execs;
  Alcotest.(check int) "relations" off.Campaign.relations on.Campaign.relations;
  Alcotest.(check bool) "relation snapshots" true
    (off.Campaign.relation_snapshots = on.Campaign.relation_snapshots);
  Alcotest.(check int) "corpus size" off.Campaign.corpus_size on.Campaign.corpus_size;
  Alcotest.(check (list int)) "corpus lengths" off.Campaign.corpus_lengths
    on.Campaign.corpus_lengths;
  let key (r : Triage.record) =
    (r.Triage.bug_key, r.Triage.first_found, r.Triage.repro_len,
     Serializer.encode r.Triage.reproducer)
  in
  Alcotest.(check bool) "crash log identical" true
    (List.map key off.Campaign.crashes = List.map key on.Campaign.crashes)

let suite =
  [
    test_run_from_equiv;
    test_cache_equiv;
    case "cache counters" test_cache_counters;
    case "LRU eviction bound" test_cache_lru_eviction;
    case "node-capacity flush" test_cache_flush_at_node_capacity;
    case "campaign identical cache on/off" test_campaign_identical_cache_on_off;
  ]
