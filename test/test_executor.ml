module Prog = Healer_executor.Prog
module Value = Healer_executor.Value
module Serializer = Healer_executor.Serializer
module Exec = Healer_executor.Exec
module Vm = Healer_executor.Vm
module Pool = Healer_executor.Pool
module K = Healer_kernel
open Helpers

(* ---- Prog editing ---- *)

let sample_prog () =
  prog
    [
      call "memfd_create" [ ptr (s "memfd"); i 3L ];
      call "write" [ r 0; buf 64; iv 64 ];
      call "fcntl$ADD_SEALS" [ r 0; i 0x409L; i 0x8L ];
      call "mmap" [ vma; iv 4096; i 1L; i 2L; r 0; i 0L ];
    ]

let test_prog_basics () =
  let p = sample_prog () in
  Alcotest.(check int) "length" 4 (Prog.length p);
  Alcotest.(check bool) "well formed" true (Prog.well_formed p);
  Alcotest.(check bool) "call 0 used" true (Prog.uses_result_of p 0);
  Alcotest.(check bool) "call 1 unused" false (Prog.uses_result_of p 1)

let test_prog_remove_shifts_refs () =
  let p = Prog.remove (sample_prog ()) 1 in
  Alcotest.(check int) "length" 3 (Prog.length p);
  Alcotest.(check bool) "still well formed" true (Prog.well_formed p);
  (* mmap's reference to call 0 must survive the removal of call 1. *)
  match (Prog.call p 2).Prog.args with
  | [ _; _; _; _; Value.Res_ref 0; _ ] -> ()
  | _ -> Alcotest.fail "reference not preserved"

let test_prog_remove_degrades_refs () =
  let p = Prog.remove (sample_prog ()) 0 in
  Alcotest.(check bool) "well formed" true (Prog.well_formed p);
  (* References to the removed producer degrade to the special -1. *)
  match (Prog.call p 0).Prog.args with
  | [ Value.Res_special -1L; _; _ ] -> ()
  | _ -> Alcotest.fail "dangling reference should degrade"

let test_prog_insert_renumbers () =
  let p = sample_prog () in
  let extra = call "fsync" [ r 0 ] in
  let p' = Prog.insert p 1 extra in
  Alcotest.(check int) "length" 5 (Prog.length p');
  Alcotest.(check bool) "well formed" true (Prog.well_formed p');
  (* The old call 1 (write) moved to index 2, still referencing 0. *)
  match (Prog.call p' 2).Prog.args with
  | [ Value.Res_ref 0; _; _ ] -> ()
  | _ -> Alcotest.fail "renumbering"

let test_prog_sub () =
  let p = Prog.sub (sample_prog ()) 2 in
  Alcotest.(check int) "prefix" 2 (Prog.length p);
  Alcotest.(check bool) "well formed" true (Prog.well_formed p)

let test_prog_pp () =
  let out = Prog.to_string (sample_prog ()) in
  Alcotest.(check bool) "names result" true
    (String.length out > 0
    && String.sub out 0 5 = "r0 = ")

(* Random edit sequences keep programs well-formed. *)
let test_prog_edit_invariant =
  qcheck ~count:300 "remove/insert keep refs backwards"
    QCheck2.Gen.(list (pair bool (int_range 0 10)))
    (fun edits ->
      let p = ref (sample_prog ()) in
      List.iter
        (fun (is_remove, pos) ->
          if is_remove && Prog.length !p > 1 then
            p := Prog.remove !p (pos mod Prog.length !p)
          else if Prog.length !p < 12 then
            p :=
              Prog.insert !p
                (pos mod (Prog.length !p + 1))
                (call "fsync" [ i 0L ]))
        edits;
      Prog.well_formed !p)

(* ---- serializer ---- *)

let test_roundtrip_explicit () =
  let p = sample_prog () in
  let decoded = Serializer.decode (tgt ()) (Serializer.encode p) in
  Alcotest.(check int) "length" (Prog.length p) (Prog.length decoded);
  for k = 0 to Prog.length p - 1 do
    let a = Prog.call p k and b = Prog.call decoded k in
    Alcotest.(check string) "syscall"
      a.Prog.syscall.Healer_syzlang.Syscall.name
      b.Prog.syscall.Healer_syzlang.Syscall.name;
    Alcotest.(check bool) "args equal" true
      (List.for_all2 Value.equal a.Prog.args b.Prog.args)
  done

(* Exercises every wire form the serializer knows, with values picked
   for shape coverage rather than type correctness — so decode-time
   validation is scoped off for this one test. *)
let test_roundtrip_all_value_forms () =
  let was = Healer_executor.Progcheck.debug_enabled () in
  Healer_executor.Progcheck.set_debug false;
  Fun.protect ~finally:(fun () -> Healer_executor.Progcheck.set_debug was)
  @@ fun () ->
  let p =
    prog
      [
        call "read"
          [
            Value.Res_special (-1L);
            Value.Buf (Bytes.of_string "\x00\xff\x80");
            Value.Int Int64.min_int;
          ];
        call "mmap"
          [ Value.Vma 0xffffffffffffL; Value.Null;
            Value.Ptr (Value.Group [ Value.Int 1L; Value.Str "s" ]);
            Value.Group []; Value.Res_ref 0; Value.Int Int64.max_int ];
      ]
  in
  let decoded = Serializer.decode (tgt ()) (Serializer.encode p) in
  let b = Prog.call decoded 1 in
  Alcotest.(check bool) "args equal" true
    (List.for_all2 Value.equal (Prog.call p 1).Prog.args b.Prog.args)

let test_serializer_malformed () =
  let expect_malformed s =
    match Serializer.decode (tgt ()) s with
    | exception Serializer.Malformed _ -> ()
    | _ -> Alcotest.fail "should reject"
  in
  expect_malformed "";
  expect_malformed "XXXX";
  expect_malformed "HLR1";
  let good = Serializer.encode (sample_prog ()) in
  expect_malformed (String.sub good 0 (String.length good - 1));
  expect_malformed (good ^ "\x00")

let test_varint_roundtrip =
  qcheck "uvarint roundtrip"
    QCheck2.Gen.(map Int64.of_int int)
    (fun v ->
      let v = Int64.logand v Int64.max_int in
      let b = Buffer.create 10 in
      Serializer.put_uvarint b v;
      let pos = ref 0 in
      Serializer.get_uvarint (Buffer.contents b) pos = v)

(* ---- execution ---- *)

let test_exec_basic_flow () =
  let p =
    prog
      [
        call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
        call "write" [ r 0; buf 100; iv 100 ];
        call "read" [ r 0; buf 10; iv 10 ];
      ]
  in
  let r = run p in
  check_ok "open" r.Exec.calls.(0);
  check_ok "write" r.Exec.calls.(1);
  Alcotest.(check int64) "write count" 100L r.Exec.calls.(1).Exec.retval;
  Alcotest.(check bool) "coverage nonempty" true (r.Exec.calls.(0).Exec.cov <> [])

let test_exec_failed_ref_degrades () =
  (* The open fails (no O_CREAT on a missing file); the dependent write
     then gets fd -1 and fails with EBADF. *)
  let p =
    prog
      [
        call "open" [ s "/tmp/missing"; i 0L; i 0L ];
        call "write" [ r 0; buf 10; iv 10 ];
      ]
  in
  let r = run p in
  check_errno "open fails" (Some K.Errno.ENOENT) r.Exec.calls.(0);
  check_errno "write gets bad fd" (Some K.Errno.EBADF) r.Exec.calls.(1)

let test_exec_deterministic () =
  let p = sample_prog () in
  let r1 = run p and r2 = run p in
  Array.iteri
    (fun k (c1 : Exec.call_result) ->
      Alcotest.(check bool)
        (Printf.sprintf "call %d cov equal" k)
        true
        (Exec.cov_equal c1.Exec.cov r2.Exec.calls.(k).Exec.cov))
    r1.Exec.calls

let test_exec_crash_stops () =
  (* tcp_disconnect: connect then connect$unspec crashes; later calls
     must not execute. *)
  let p =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "connect" [ r 0; group [ i 2L; i 80L; i 1L ] ];
        call "connect$unspec" [ r 0; i 0L ];
        call "close" [ r 0 ];
      ]
  in
  let r = run p in
  check_crash "crash key" (Some "tcp_disconnect") r;
  Alcotest.(check bool) "last call skipped" false r.Exec.calls.(3).Exec.executed

let test_exec_sanitizer_gating () =
  (* raw_sendmsg_uninit is a KMSAN bug: invisible without KMSAN. *)
  let p =
    prog
      [
        call "socket$raw" [ i 2L; i 3L; i 255L ];
        call "sendto" [ r 0; buf 4; iv 4; i 0L; group [ i 2L; i 0L; i 0L ] ];
      ]
  in
  let with_kmsan = run p in
  check_crash "detected" (Some "raw_sendmsg_uninit") with_kmsan;
  let without = run ~san:{ K.Sanitizer.default with kmsan = false } p in
  check_crash "silent without kmsan" None without

let test_exec_version_gating () =
  (* blk_add_partitions exists only on 5.11. *)
  let p =
    prog
      [
        call "openat$loop" [ i (-100L); s "/dev/loop0"; i 0L ];
        call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
        call "ioctl$LOOP_SET_FD" [ r 0; i 0x4c00L; r 1 ];
        call "ioctl$BLKPG_ADD" [ r 0; i 0x1269L; group [ i 1L; i 0L; i 0L ] ];
        call "ioctl$BLKPG_DEL" [ r 0; i 0x126aL; group [ i 1L; i 0L; i 0L ] ];
        call "ioctl$BLKRRPART" [ r 0; i 0x125fL ];
      ]
  in
  check_crash "fires on 5.11" (Some "blk_add_partitions")
    (run ~version:K.Version.V5_11 p);
  check_crash "absent on 5.4" None (run ~version:K.Version.V5_4 p)

let test_exec_fault_injection_coredump () =
  (* Fault injection kills the process after the chosen call; the
     core-dump path leaks uninitialized memory (Listing 2) when KMSAN
     watches and the process had open descriptors. *)
  let p =
    prog
      [
        call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
        call "write" [ r 0; buf 10; iv 10 ];
        call "read" [ r 0; buf 10; iv 10 ];
      ]
  in
  let r = run ~version:K.Version.V5_11 ~fault_call:1 p in
  check_crash "fill_thread_core_info" (Some "fill_thread_core_info") r;
  Alcotest.(check bool) "read never ran" false r.Exec.calls.(2).Exec.executed;
  (* Not present before 5.6 in the catalog. *)
  check_crash "absent on 5.4" None (run ~version:K.Version.V5_4 ~fault_call:1 p)

let test_cov_equal () =
  Alcotest.(check bool) "order insensitive" true (Exec.cov_equal [ 1; 2 ] [ 2; 1 ]);
  Alcotest.(check bool) "dup insensitive" true (Exec.cov_equal [ 1; 1 ] [ 1 ]);
  Alcotest.(check bool) "different" false (Exec.cov_equal [ 1 ] [ 2 ])

(* ---- VM and pool ---- *)

let crash_prog () =
  prog
    [
      call "socket$tcp" [ i 2L; i 1L; i 6L ];
      call "connect" [ r 0; group [ i 2L; i 80L; i 1L ] ];
      call "connect$unspec" [ r 0; i 0L ];
    ]

let test_vm_lifecycle () =
  let vm = Vm.create ~version:K.Version.V5_11 ~id:0 () in
  Alcotest.(check bool) "fresh" false (Vm.crashed vm);
  let r = Vm.run vm (crash_prog ()) in
  Alcotest.(check bool) "crashed" true (Vm.crashed vm);
  Alcotest.(check bool) "report" true (r.Exec.crash <> None);
  (* The next run auto-resets. *)
  let _ = Vm.run vm (prog [ call "open" [ s "/etc/passwd"; i 0L; i 0L ] ]) in
  let st = Vm.stats vm in
  Alcotest.(check int) "execs" 2 st.Vm.execs;
  Alcotest.(check int) "crashes" 1 st.Vm.crashes;
  Alcotest.(check int) "resets" 1 st.Vm.resets

let test_pool_round_robin () =
  let pool = Pool.create ~version:K.Version.V5_11 ~size:3 () in
  let ids = List.init 7 (fun _ -> Vm.id (Pool.next pool)) in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 0; 1; 2; 0 ] ids

let test_pool_stats () =
  let pool = Pool.create ~version:K.Version.V5_11 ~size:2 () in
  ignore (Pool.run pool (crash_prog ()));
  ignore (Pool.run pool (prog [ call "open" [ s "/etc/passwd"; i 0L; i 0L ] ]));
  Alcotest.(check int) "execs" 2 (Pool.total_execs pool);
  Alcotest.(check int) "crashes" 1 (Pool.total_crashes pool)

let suite =
  [
    case "prog basics" test_prog_basics;
    case "prog remove shifts refs" test_prog_remove_shifts_refs;
    case "prog remove degrades refs" test_prog_remove_degrades_refs;
    case "prog insert renumbers" test_prog_insert_renumbers;
    case "prog sub" test_prog_sub;
    case "prog pp" test_prog_pp;
    test_prog_edit_invariant;
    case "serializer roundtrip" test_roundtrip_explicit;
    case "serializer all value forms" test_roundtrip_all_value_forms;
    case "serializer malformed" test_serializer_malformed;
    test_varint_roundtrip;
    case "exec basic flow" test_exec_basic_flow;
    case "exec failed ref degrades" test_exec_failed_ref_degrades;
    case "exec deterministic" test_exec_deterministic;
    case "exec crash stops program" test_exec_crash_stops;
    case "exec sanitizer gating" test_exec_sanitizer_gating;
    case "exec version gating" test_exec_version_gating;
    case "exec fault injection coredump" test_exec_fault_injection_coredump;
    case "cov_equal" test_cov_equal;
    case "vm lifecycle" test_vm_lifecycle;
    case "pool round robin" test_pool_round_robin;
    case "pool stats" test_pool_stats;
  ]
