module Rng = Healer_util.Rng
module Bitset = Healer_util.Bitset
module Statx = Healer_util.Statx
module Vclock = Healer_util.Vclock
open Helpers

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.bits64 a) in
  let ys = List.init 32 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_range =
  qcheck "Rng.int in range" QCheck2.Gen.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_int_in =
  qcheck "Rng.int_in inclusive"
    QCheck2.Gen.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let hi = lo + span in
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let test_rng_weighted () =
  let rng = Rng.create 5 in
  (* Zero-weight choices must never be picked. *)
  for _ = 1 to 200 do
    let x = Rng.weighted rng [ ("a", 0); ("b", 3); ("c", 0) ] in
    Alcotest.(check string) "only positive weight" "b" x
  done

let test_rng_weighted_bias () =
  let rng = Rng.create 5 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Rng.weighted rng [ (true, 9); (false, 1) ] then incr hits
  done;
  Alcotest.(check bool) "9:1 bias respected" true (!hits > 780 && !hits < 980)

let test_rng_shuffle_permutation =
  qcheck "shuffle is a permutation" QCheck2.Gen.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let a = Array.of_list xs in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_rng_sample () =
  let rng = Rng.create 9 in
  let xs = List.init 20 (fun i -> i) in
  let s = Rng.sample rng 5 xs in
  Alcotest.(check int) "sample size" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s))

let test_rng_chance_extremes () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_bitset_basic () =
  let b = Bitset.create () in
  Alcotest.(check int) "empty" 0 (Bitset.count b);
  Bitset.add b 3;
  Bitset.add b 3;
  Bitset.add b 100000;
  Alcotest.(check int) "dedup count" 2 (Bitset.count b);
  Alcotest.(check bool) "mem 3" true (Bitset.mem b 3);
  Alcotest.(check bool) "mem 4" false (Bitset.mem b 4);
  Alcotest.(check (list int)) "elements sorted" [ 3; 100000 ] (Bitset.elements b)

let test_bitset_add_seq () =
  let b = Bitset.create () in
  let fresh = Bitset.add_seq b [ 1; 2; 2; 3 ] in
  Alcotest.(check int) "fresh" 3 fresh;
  Alcotest.(check int) "second add" 1 (Bitset.add_seq b [ 3; 4 ])

let test_bitset_new_of () =
  let b = Bitset.create () in
  ignore (Bitset.add_seq b [ 1; 2 ]);
  Alcotest.(check (list int)) "new only" [ 3 ] (Bitset.new_of b [ 1; 3; 3; 2 ]);
  Alcotest.(check bool) "no mutation" false (Bitset.mem b 3);
  (* The mark/unmark implementation must restore cardinality and cope
     with ids past the current capacity. *)
  Alcotest.(check int) "count restored" 2 (Bitset.count b);
  Alcotest.(check (list int)) "order kept, growth ok" [ 9000; 4; 8999 ]
    (Bitset.new_of b [ 9000; 4; 9000; 2; 8999 ]);
  Alcotest.(check int) "count still restored" 2 (Bitset.count b)

let test_bitset_union_copy_clear () =
  let a = Bitset.create () and b = Bitset.create () in
  ignore (Bitset.add_seq a [ 1; 5 ]);
  ignore (Bitset.add_seq b [ 5; 9 ]);
  Bitset.union_into ~dst:a b;
  Alcotest.(check (list int)) "union" [ 1; 5; 9 ] (Bitset.elements a);
  let c = Bitset.copy a in
  Bitset.clear a;
  Alcotest.(check int) "cleared" 0 (Bitset.count a);
  Alcotest.(check int) "copy unaffected" 3 (Bitset.count c)

let test_bitset_vs_reference =
  qcheck "bitset matches a set reference"
    QCheck2.Gen.(list (int_range 0 500))
    (fun xs ->
      let b = Bitset.create () in
      List.iter (Bitset.add b) xs;
      let reference = List.sort_uniq compare xs in
      Bitset.count b = List.length reference
      && Bitset.elements b = reference)

let test_statx () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Statx.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Statx.mean []);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Statx.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Statx.maximum [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "pct" 50.0 (Statx.pct 100.0 150.0);
  Alcotest.(check (float 1e-6)) "stddev" 0.0 (Statx.stddev [ 5.0; 5.0 ])

let test_statx_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Statx.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Statx.percentile 100.0 xs)

let test_statx_histogram () =
  let h = Statx.histogram ~buckets:[ 1; 2; 3; 4 ] [ 1; 1; 2; 4; 7; 9 ] in
  Alcotest.(check (list (pair string int)))
    "histogram"
    [ ("1", 2); ("2", 1); ("3", 0); ("4", 1); ("5+", 2) ]
    h

let test_vclock () =
  let c = Vclock.create () in
  Alcotest.(check (float 1e-9)) "starts at zero" 0.0 (Vclock.now c);
  Vclock.advance c 1.5;
  Vclock.advance c 2.5;
  Alcotest.(check (float 1e-9)) "accumulates" 4.0 (Vclock.now c);
  Alcotest.(check (float 1e-9)) "hours" 7200.0 (Vclock.hours 2.0);
  Alcotest.check_raises "negative dt rejected"
    (Invalid_argument "Vclock.advance: negative dt") (fun () ->
      Vclock.advance c (-1.0))

let test_asciichart_shape () =
  let chart =
    Healer_util.Asciichart.render ~width:20 ~height:5
      ~series:[ ("a", [| 0.0; 5.0; 10.0 |]); ("b", [| 1.0; 1.0; 1.0 |]) ]
      ()
  in
  let lines = String.split_on_char '\n' chart in
  (* 5 grid rows + axis + legend + trailing empty *)
  Alcotest.(check int) "line count" 8 (List.length lines);
  Alcotest.(check bool) "max label" true
    (String.length (List.hd lines) > 0
    && String.trim (List.hd lines) <> ""
    && String.contains (List.hd lines) '1');
  Alcotest.(check bool) "legend names both series" true
    (let legend = List.nth lines 6 in
     let has sub =
       let n = String.length legend and m = String.length sub in
       let rec go i = i + m <= n && (String.sub legend i m = sub || go (i + 1)) in
       go 0
     in
     has "a" && has "b")

let test_asciichart_errors () =
  let reject f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "should reject"
  in
  reject (fun () -> Healer_util.Asciichart.render ~series:[] ());
  reject (fun () -> Healer_util.Asciichart.render ~series:[ ("a", [||]) ] ())

let suite =
  [
    case "rng deterministic" test_rng_deterministic;
    case "rng seed sensitivity" test_rng_seed_sensitivity;
    case "rng copy" test_rng_copy;
    case "rng split independent" test_rng_split_independent;
    test_rng_int_range;
    test_rng_int_in;
    case "rng weighted zero" test_rng_weighted;
    case "rng weighted bias" test_rng_weighted_bias;
    test_rng_shuffle_permutation;
    case "rng sample" test_rng_sample;
    case "rng chance extremes" test_rng_chance_extremes;
    case "bitset basic" test_bitset_basic;
    case "bitset add_seq" test_bitset_add_seq;
    case "bitset new_of" test_bitset_new_of;
    case "bitset union/copy/clear" test_bitset_union_copy_clear;
    test_bitset_vs_reference;
    case "statx basics" test_statx;
    case "statx percentile" test_statx_percentile;
    case "statx histogram" test_statx_histogram;
    case "vclock" test_vclock;
    case "asciichart shape" test_asciichart_shape;
    case "asciichart errors" test_asciichart_errors;
  ]
