(* The program validator: one hand-broken fixture per check ID, golden
   clean-corpus tests, and "fuzz the fuzzer" property suites asserting
   the whole gen/mutate/edit/minimize/serialize pipeline only ever
   emits validator-clean programs. *)

module Prog = Healer_executor.Prog
module Value = Healer_executor.Value
module Serializer = Healer_executor.Serializer
module P = Healer_executor.Progcheck
module D = Healer_util.Diagnostic
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module Rng = Healer_util.Rng
open Healer_core
open Helpers

(* ---- a mini target exercising every type constructor ---- *)

let mini_src =
  {|
resource fd[int32]: -1
resource fd_sub[fd]
flags oflags = 0x1 0x2 0x8
struct st { data buffer[in], n len[data], k int32 }
union u { ua int32[0:4], ub fd }
open_thing(path filename["/x"], mode flags[oflags]) fd
open_sub() fd_sub
use_thing(f fd, v int32[0:10], c const[0x42], p proc[100, 4], arr array[int8, 1:3], st ptr[in, st], un ptr[in, u], outp ptr[out, fd])
use_sub(f fd_sub)
close_thing(f fd)
noop(x int32)
|}

let mini = lazy (Target.of_string ~name:"mini" mini_src)
let mt () = Lazy.force mini
let mcall name args = { Prog.syscall = Target.find_exn (mt ()) name; args }

let open_call () = mcall "open_thing" [ Value.Str "/x"; Value.Int 0x2L ]

(* A fully conformant use_thing against r0. *)
let use_call ?(f = Value.Res_ref 0) ?(v = Value.Int 5L) ?(c = Value.Int 0x42L)
    ?(p = Value.Int 108L)
    ?(arr = Value.Group [ Value.Int 1L; Value.Int 2L ])
    ?(st =
      Value.Ptr
        (Value.Group [ Value.Buf (Bytes.make 4 'a'); Value.Int 4L; Value.Int 7L ]))
    ?(un = Value.Ptr (Value.Group [ Value.Int 3L ])) ?(outp = Value.Null) () =
  mcall "use_thing" [ f; v; c; p; arr; st; un; outp ]

let clean_prog () =
  prog [ open_call (); use_call (); mcall "close_thing" [ Value.Res_ref 0 ] ]

let has id ds = List.exists (fun (d : D.t) -> String.equal d.D.check id) ds

let str_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_error id p =
  let ds = P.errors (mt ()) p in
  Alcotest.(check bool)
    (Printf.sprintf "%s reported in: %s" id (Prog.to_string p))
    true (has id ds)

let expect_warning id p =
  let ds = P.check (mt ()) p in
  Alcotest.(check bool) (id ^ " reported") true
    (List.exists
       (fun (d : D.t) -> d.D.check = id && d.D.severity = D.Warning)
       ds);
  Alcotest.(check (list string))
    (id ^ " fixture stays error-free")
    [] (List.map D.to_string (P.errors (mt ()) p))

(* ---- fixtures: the clean program and one broken program per check ---- *)

let test_clean () =
  Alcotest.(check (list string))
    "clean program has no diagnostics at all" []
    (List.map D.to_string (P.check (mt ()) (clean_prog ())));
  Alcotest.(check bool) "is_clean" true (P.is_clean (mt ()) (clean_prog ()))

let test_alien_call () =
  let ghost = { Syscall.id = 999; name = "ghost"; base = "ghost"; args = []; ret = None } in
  expect_error "prog-alien-call" (prog [ { Prog.syscall = ghost; args = [] } ]);
  (* Right id, wrong declaration. *)
  let imposter = { (Target.syscall (mt ()) 0) with Syscall.name = "imposter" } in
  expect_error "prog-alien-call" (prog [ { Prog.syscall = imposter; args = [] } ])

let test_arity () =
  expect_error "prog-arity" (prog [ mcall "open_thing" [ Value.Str "/x" ] ])

let test_type () =
  expect_error "prog-type"
    (prog [ open_call (); use_call ~v:(Value.Str "not an int") () ])

let test_const () =
  expect_error "prog-const"
    (prog [ open_call (); use_call ~c:(Value.Int 0x41L) () ])

let test_flags () =
  (* declared mask is 0x1|0x2|0x8 = 0xb; 0x4 escapes it *)
  expect_error "prog-flags"
    (prog [ mcall "open_thing" [ Value.Str "/x"; Value.Int 0x4L ] ])

let test_int_width () =
  (* ranged int32[0:10] *)
  expect_error "prog-int-width"
    (prog [ open_call (); use_call ~v:(Value.Int 20L) () ]);
  (* unranged int8 inside the array *)
  expect_error "prog-int-width"
    (prog [ open_call (); use_call ~arr:(Value.Group [ Value.Int 300L ]) () ])

let test_proc () =
  expect_error "prog-proc"
    (prog [ open_call (); use_call ~p:(Value.Int 101L) () ])

let test_len () =
  (* st.n says 99 bytes; st.data is 4 *)
  expect_error "prog-len"
    (prog
       [
         open_call ();
         use_call
           ~st:
             (Value.Ptr
                (Value.Group
                   [ Value.Buf (Bytes.make 4 'a'); Value.Int 99L; Value.Int 7L ]))
           ();
       ])

let test_array_bounds () =
  (* array[int8, 1:3]: empty and oversized both escape *)
  expect_error "prog-array-bounds"
    (prog [ open_call (); use_call ~arr:(Value.Group []) () ]);
  expect_error "prog-array-bounds"
    (prog
       [
         open_call ();
         use_call
           ~arr:(Value.Group (List.init 4 (fun _ -> Value.Int 1L)))
           ();
       ])

let test_union () =
  (* neither arm (int32[0:4] | fd) accepts a string *)
  expect_error "prog-union"
    (prog
       [ open_call (); use_call ~un:(Value.Ptr (Value.Group [ Value.Str "x" ])) () ])

let test_union_arm_choice () =
  (* an in-range int conforms to arm ua; an fd reference to arm ub *)
  let ok un = prog [ open_call (); use_call ~un (); mcall "close_thing" [ Value.Res_ref 0 ] ] in
  Alcotest.(check (list string))
    "int arm accepted" []
    (List.map D.to_string (P.errors (mt ()) (ok (Value.Ptr (Value.Group [ Value.Int 4L ])))));
  Alcotest.(check (list string))
    "resource arm accepted" []
    (List.map D.to_string
       (P.errors (mt ()) (ok (Value.Ptr (Value.Group [ Value.Res_ref 0 ])))));
  (* out-of-range for ua and not a resource for ub: rejected *)
  expect_error "prog-union"
    (prog [ open_call (); use_call ~un:(Value.Ptr (Value.Group [ Value.Str "zz" ])) () ])

let test_res_dangling () =
  (* forward and self references *)
  expect_error "prog-res-dangling" (prog [ use_call ~f:(Value.Res_ref 0) () ]);
  expect_error "prog-res-dangling"
    (prog [ open_call (); use_call ~f:(Value.Res_ref 5) () ])

let test_res_kind () =
  (* noop produces nothing *)
  expect_error "prog-res-kind"
    (prog [ mcall "noop" [ Value.Int 0L ]; use_call ~f:(Value.Res_ref 0) () ]);
  (* fd is not a subtype of fd_sub: open_thing's fd cannot feed use_sub *)
  expect_error "prog-res-kind"
    (prog [ open_call (); mcall "use_sub" [ Value.Res_ref 0 ] ]);
  (* ...but fd_sub inherits from fd, so open_sub's result can feed use_thing *)
  Alcotest.(check (list string))
    "inherited kind accepted" []
    (List.map D.to_string
       (P.errors (mt ())
          (prog
             [
               mcall "open_sub" [];
               use_call ~f:(Value.Res_ref 0) ();
               mcall "close_thing" [ Value.Res_ref 0 ];
             ])))

let test_out_ref () =
  (* outp is ptr[out, fd]: passing a live reference there is suspect *)
  expect_warning "prog-out-ref"
    (prog
       [
         open_call ();
         use_call ~outp:(Value.Ptr (Value.Res_ref 0)) ();
         mcall "close_thing" [ Value.Res_ref 0 ];
       ])

let test_dead_producer () =
  expect_warning "prog-dead-producer" (prog [ open_call () ])

let test_use_after_close () =
  expect_warning "prog-use-after-close"
    (prog
       [
         open_call ();
         mcall "close_thing" [ Value.Res_ref 0 ];
         use_call ~f:(Value.Res_ref 0) ();
       ]);
  Alcotest.(check bool) "close_thing is a closer" true
    (P.is_closer (Target.find_exn (mt ()) "close_thing"));
  Alcotest.(check bool) "open_thing is not" false
    (P.is_closer (Target.find_exn (mt ()) "open_thing"))

(* Every check ID has a fixture above; make sure the catalog and the
   analyzer's --list-checks registry agree. *)
let test_catalog () =
  let ids = List.map (fun (id, _, _) -> id) P.checks in
  Alcotest.(check int) "unique IDs" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " has prog- prefix") true
        (String.length id > 5 && String.sub id 0 5 = "prog-"))
    ids;
  let registered =
    List.filter_map
      (fun (id, _, _, pass) -> if pass = "progcheck" then Some id else None)
      Healer_analysis.Analysis.all_checks
  in
  Alcotest.(check (list string)) "registered with the analyzer" ids registered

(* ---- debug enforcement ---- *)

let test_debug_check () =
  (* main.ml turns validation on for the whole suite *)
  Alcotest.(check bool) "debug on under the test runner" true (P.debug_enabled ());
  let bad = prog [ open_call (); use_call ~c:(Value.Int 0L) () ] in
  (match P.debug_check ~what:"fixture" (mt ()) bad with
  | () -> Alcotest.fail "expected Progcheck.Invalid"
  | exception P.Invalid msg ->
    Alcotest.(check bool) "names the stage" true (str_contains msg "fixture")
  | exception _ -> Alcotest.fail "expected Progcheck.Invalid");
  P.debug_check ~what:"fixture" (mt ()) (clean_prog ());
  P.set_debug false;
  Fun.protect
    ~finally:(fun () -> P.set_debug true)
    (fun () -> P.debug_check ~what:"fixture" (mt ()) bad)

(* Decoding a well-formed encoding of a type-invalid program is a
   Malformed input under debug validation. *)
let test_decode_rejects_invalid () =
  let bad = prog [ open_call (); use_call ~c:(Value.Int 0L) () ] in
  let s = Serializer.encode bad in
  match Serializer.decode (mt ()) s with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Serializer.Malformed _ -> ()

(* ---- golden clean corpora ---- *)

let test_seed_corpora_clean () =
  let t = tgt () in
  List.iter
    (fun p ->
      Alcotest.(check (list string))
        "seed trace validator-clean" []
        (List.map D.to_string (P.errors t p)))
    (Seeds.traces t @ Seeds.distilled t)

(* ---- fuzz the fuzzer: the pipeline only emits clean programs ---- *)

let select_uniform rng t ~sub:_ = Rng.int rng (Target.n_syscalls t)

(* The enforcement hooks themselves raise Progcheck.Invalid under the
   suite-wide debug flag; the explicit assertions make the property
   independent of the flag. *)
let test_pipeline_clean () =
  let t = tgt () in
  let rng = rng ~seed:11 () in
  for _ = 1 to 500 do
    let p = Gen.generate rng t ~select:(select_uniform rng t) () in
    Alcotest.(check (list string))
      "generated program clean" []
      (List.map D.to_string (P.errors t p));
    let p = ref p in
    for _ = 1 to 3 do
      p := Mutate.mutate rng t ~select:(select_uniform rng t) !p;
      Alcotest.(check (list string))
        "mutated program clean" []
        (List.map D.to_string (P.errors t !p))
    done
  done

let test_edit_clean () =
  let t = tgt () in
  let rng = rng ~seed:12 () in
  for _ = 1 to 300 do
    let p = ref (Gen.generate rng t ~select:(select_uniform rng t) ()) in
    for _ = 1 to 5 do
      (if Rng.bool rng && Prog.length !p < Builder.max_prog_len then
         let at = Rng.int rng (Prog.length !p + 1) in
         let calls = Target.syscalls t in
         let c = calls.(Rng.int rng (Array.length calls)) in
         p := Builder.insert_call rng t !p ~at c
       else if Prog.length !p > 1 then p := Prog.remove !p (Rng.int rng (Prog.length !p)));
      Alcotest.(check bool) "edited program well-formed" true (Prog.well_formed !p);
      Alcotest.(check (list string))
        "edited program clean" []
        (List.map D.to_string (P.errors t !p))
    done
  done

let test_roundtrip_clean () =
  let t = tgt () in
  let rng = rng ~seed:13 () in
  for _ = 1 to 200 do
    let p = Gen.generate rng t ~select:(select_uniform rng t) () in
    (* decode re-validates under the debug flag and raises Malformed on
       any regression *)
    let p' = Serializer.decode t (Serializer.encode p) in
    Alcotest.(check string) "roundtrip identity" (Prog.to_string p) (Prog.to_string p')
  done

let test_minimize_clean () =
  let t = tgt () in
  let rng = rng ~seed:14 () in
  let module Exec = Healer_executor.Exec in
  let exec q = Helpers.run q in
  let iters = ref 0 in
  while !iters < 30 do
    let p = Gen.generate rng t ~select:(select_uniform rng t) () in
    let result = exec p in
    if result.Exec.crash = None then begin
      incr iters;
      let cov = Array.map (fun (c : Exec.call_result) -> c.Exec.cov) result.Exec.calls in
      let pc = { Prog_cov.prog = p; cov; new_cov = Array.map (fun c -> c) cov } in
      (* ~target makes minimize assert each subsequence; check again
         explicitly *)
      List.iter
        (fun (m : Prog_cov.t) ->
          Alcotest.(check (list string))
            "minimized subsequence clean" []
            (List.map D.to_string (P.errors t m.Prog_cov.prog)))
        (Minimize.minimize ~target:t ~exec pc)
    end
  done

(* ---- satellite (a): reference renumbering under long edit sequences.

   Model: give every call a unique label; removal deletes the label,
   insertion mints a fresh one. After any edit sequence the labels a
   call references must match the model exactly — references to a
   removed call vanish (degraded to Res_special), all others follow
   their producer. *)

let ref_labels p labels =
  List.init (Prog.length p) (fun k ->
      List.map (fun j -> List.nth labels j) (Prog.refs_of_call (Prog.call p k)))

let test_edit_renumbering =
  qcheck ~count:150 "edit sequences renumber refs like the label model"
    QCheck2.Gen.(
      pair small_int (list_size (int_range 1 25) (pair bool (int_bound 1000))))
    (fun (seed, edits) ->
      let t = tgt () in
      let rng = Rng.create (seed + 5000) in
      let p =
        ref (Gen.generate rng t ~select:(select_uniform rng t) ())
      in
      let labels = ref (List.init (Prog.length !p) (fun k -> k)) in
      let fresh = ref (Prog.length !p) in
      List.for_all
        (fun (is_insert, x) ->
          if is_insert && Prog.length !p < Builder.max_prog_len then begin
            let at = x mod (Prog.length !p + 1) in
            let before = ref_labels !p !labels in
            let calls = Target.syscalls t in
            let sc = calls.(Rng.int rng (Array.length calls)) in
            (* make_call + Prog.insert adds exactly one call, which is
               what the label model tracks (insert_call may splice in
               whole producer chains) *)
            let c = Builder.make_call rng t !p ~at sc in
            p := Prog.insert !p at c;
            let l = !fresh in
            incr fresh;
            labels :=
              List.filteri (fun k _ -> k < at) !labels
              @ (l :: List.filteri (fun k _ -> k >= at) !labels);
            let after = ref_labels !p !labels in
            (* every pre-existing call still references the same labels *)
            List.filteri (fun k _ -> k <> at) after = before
            && Prog.well_formed !p
          end
          else if Prog.length !p > 1 then begin
            let i = x mod Prog.length !p in
            let removed = List.nth !labels i in
            let before = ref_labels !p !labels in
            p := Prog.remove !p i;
            labels := List.filteri (fun k _ -> k <> i) !labels;
            let after = ref_labels !p !labels in
            let expected =
              List.filteri (fun k _ -> k <> i) before
              |> List.map (List.filter (fun l -> l <> removed))
            in
            after = expected && Prog.well_formed !p
          end
          else true)
        edits)

(* ---- satellite (b): serializer corruption robustness ---- *)

(* Single-byte corruptions of valid encodings either decode to a
   validator-clean program or raise Malformed — never another
   exception, never a dirty program (debug validation would convert
   that to Malformed; the explicit errors check keeps the property
   honest even with validation off). *)
let test_corruption_never_dirty =
  qcheck ~count:400 "corrupted encodings never decode dirty"
    QCheck2.Gen.(triple small_int (int_bound 4095) (int_bound 255))
    (fun (seed, pos, byte) ->
      let t = tgt () in
      let rng = Rng.create (seed + 9000) in
      let p = Gen.generate rng t ~select:(select_uniform rng t) () in
      let good = Serializer.encode p in
      let bytes = Bytes.of_string good in
      Bytes.set bytes (pos mod Bytes.length bytes) (Char.chr byte);
      match Serializer.decode t (Bytes.to_string bytes) with
      | p' -> P.errors t p' = []
      | exception Serializer.Malformed _ -> true)

(* ---- the analysis-layer corpus report ---- *)

let test_report_json () =
  let t = mt () in
  let bad = prog [ open_call (); use_call ~c:(Value.Int 0L) () ] in
  let named = [ (Some "fix#0", clean_prog ()); (Some "fix#1", bad) ] in
  let ds = Healer_analysis.Progcheck.validate t named in
  Alcotest.(check bool) "const error found" true (has "prog-const" ds);
  let counts = Healer_analysis.Progcheck.count_by_check ds in
  Alcotest.(check bool) "counts nonzero" true
    (List.exists (fun (id, n) -> id = "prog-const" && n >= 1) counts);
  let json = Healer_analysis.Progcheck.report_to_json ~name:"mini" ~programs:2 ds in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " in json") true (str_contains json affix))
    [ "\"programs\":2"; "\"prog-const\""; "\"checks\":["; "\"diagnostics\":[" ]

let suite =
  [
    case "clean program" test_clean;
    case "prog-alien-call" test_alien_call;
    case "prog-arity" test_arity;
    case "prog-type" test_type;
    case "prog-const" test_const;
    case "prog-flags" test_flags;
    case "prog-int-width" test_int_width;
    case "prog-proc" test_proc;
    case "prog-len" test_len;
    case "prog-array-bounds" test_array_bounds;
    case "prog-union" test_union;
    case "union arm choice" test_union_arm_choice;
    case "prog-res-dangling" test_res_dangling;
    case "prog-res-kind" test_res_kind;
    case "prog-out-ref" test_out_ref;
    case "prog-dead-producer" test_dead_producer;
    case "prog-use-after-close" test_use_after_close;
    case "check catalog" test_catalog;
    case "debug_check raises" test_debug_check;
    case "decode rejects invalid" test_decode_rejects_invalid;
    case "seed corpora clean" test_seed_corpora_clean;
    case "500x gen + 1500x mutate clean" test_pipeline_clean;
    case "1500x edit clean" test_edit_clean;
    case "200x roundtrip clean" test_roundtrip_clean;
    case "minimize outputs clean" test_minimize_clean;
    test_edit_renumbering;
    test_corruption_never_dirty;
    case "corpus report json" test_report_json;
  ]
