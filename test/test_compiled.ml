(* The compiled execution engine: lowering a program once and patching
   resource slots must be observationally identical to the interpreter
   — results, coverage, crashes and lock accounting — across
   generation, mutation, minimization shapes, fault injection, every
   catalog reproducer, and the prefix cache's compiled-call reuse. *)

module Prog = Healer_executor.Prog
module Value = Healer_executor.Value
module Compiled = Healer_executor.Compiled
module Exec = Healer_executor.Exec
module Exec_cache = Healer_executor.Exec_cache
module Vm = Healer_executor.Vm
module Target = Healer_syzlang.Target
module Rng = Healer_util.Rng
module K = Healer_kernel
open Healer_core
open Helpers

let gen_prog seed =
  let rng = Rng.create seed in
  Gen.generate rng (tgt ())
    ~select:(fun ~sub:_ -> Rng.int rng (Target.n_syscalls (tgt ())))
    ()

(* Full structural run, for bit-identical comparison: the result
   record (retvals, errnos, per-call coverage in first-hit order,
   crash report) plus the kernel's lock-pair counters. *)
let observe_interp ?fault_call p =
  let kernel, r = Exec.run ?fault_call (boot ()) p in
  (r, K.Kernel.lock_pair_counts kernel)

let observe_compiled ?fault_call c =
  let kernel, r = Exec.run_compiled ?fault_call (boot ()) c in
  (r, K.Kernel.lock_pair_counts kernel)

(* Engines agree on generated programs pushed through mutation chains
   (the fuzz loop's exact workload). *)
let test_gen_mutate_differential =
  qcheck ~count:60 "compiled ≡ interpreted over gen+mutate"
    QCheck2.Gen.(pair small_int (int_range 0 4))
    (fun (seed, muts) ->
      let t = tgt () in
      let rng = Rng.create (seed + 1) in
      let select ~sub:_ = Rng.int rng (Target.n_syscalls t) in
      let p = ref (Gen.generate rng t ~select ()) in
      for _ = 1 to muts do
        p := Mutate.mutate rng t ~select !p
      done;
      observe_interp !p = observe_compiled (Compiled.compile !p))

(* Minimization probes: every single-call removal of a program, run
   compiled via the derived form (sharing the parent's skeletons). *)
let test_minimize_shapes =
  qcheck ~count:40 "compiled removal probes ≡ interpreted"
    QCheck2.Gen.small_int
    (fun seed ->
      let p = gen_prog seed in
      let c = Compiled.compile p in
      let n = Prog.length p in
      n <= 1
      || List.for_all
           (fun pos ->
             observe_interp (Prog.remove p pos)
             = observe_compiled (Compiled.remove c pos))
           (List.init n Fun.id))

(* Derived compiled forms are indistinguishable from recompiling the
   edited program — both in the program they carry and in execution. *)
let test_derived_forms =
  qcheck ~count:40 "derived forms ≡ recompilation" QCheck2.Gen.small_int
    (fun seed ->
      let p = gen_prog seed in
      let n = Prog.length p in
      if n = 0 then true
      else begin
        let c = Compiled.compile p in
        let rng = Rng.create (seed + 77) in
        let at = Rng.int rng (n + 1) in
        let nc = Builder.make_call rng (tgt ()) p ~at (Prog.call p (Rng.int rng n)).Prog.syscall in
        let agree derived edited =
          Compiled.prog derived = edited
          && observe_compiled derived = observe_compiled (Compiled.compile edited)
        in
        let rm = Rng.int rng n in
        let cut = Rng.int rng (n + 1) in
        agree (Compiled.insert c at nc) (Prog.insert p at nc)
        && agree (Compiled.append c nc) (Prog.append p nc)
        && agree (Compiled.remove c rm) (Prog.remove p rm)
        && agree (Compiled.sub c cut) (Prog.sub p cut)
      end)

(* Fault injection goes through the compiled path's coredump branch. *)
let test_fault_differential =
  qcheck ~count:30 "fault-injected compiled ≡ interpreted"
    QCheck2.Gen.(pair small_int (int_range 0 12))
    (fun (seed, fc) ->
      let p = gen_prog seed in
      if Prog.length p = 0 then true
      else begin
        let fc = fc mod Prog.length p in
        observe_interp ~fault_call:fc p
        = observe_compiled ~fault_call:fc (Compiled.compile p)
      end)

(* Every catalog reproducer — crashing programs, feature-gated
   subsystems, fault-triggered bugs — behaves identically compiled. *)
let test_repros_differential () =
  List.iter
    (fun (rp : Bug_repros.repro) ->
      let p = rp.Bug_repros.build () in
      let boot () =
        boot ~version:rp.Bug_repros.version ~features:rp.Bug_repros.features ()
      in
      let fault_call = rp.Bug_repros.fault_call in
      let ki, ri = Exec.run ?fault_call (boot ()) p in
      let kc, rc = Exec.run_compiled ?fault_call (boot ()) (Compiled.compile p) in
      if ri <> rc then
        Alcotest.failf "engine divergence on reproducer %s" rp.Bug_repros.key;
      if K.Kernel.lock_pair_counts ki <> K.Kernel.lock_pair_counts kc then
        Alcotest.failf "lock-counter divergence on reproducer %s"
          rp.Bug_repros.key)
    Bug_repros.all

(* The prefix cache serves identical results whichever engine runs
   underneath, across re-runs and removal variants (snapshot resume +
   compiled-prefix reuse paths included). *)
let test_cache_engines_agree =
  qcheck ~count:25 "cached runs identical across engines"
    QCheck2.Gen.small_int
    (fun seed ->
      let p = gen_prog seed in
      let variants =
        p
        :: (if Prog.length p <= 1 then []
            else List.init (Prog.length p) (fun pos -> Prog.remove p pos))
      in
      let saved = Exec.compiled_enabled () in
      Fun.protect ~finally:(fun () -> Exec.set_compiled saved) @@ fun () ->
      let with_engine flag =
        Exec.set_compiled flag;
        let cache = Exec_cache.create ~version:K.Version.V5_11 () in
        List.concat_map
          (fun q -> [ Exec_cache.run cache q; Exec_cache.run cache q ])
          variants
      in
      with_engine true = with_engine false)

(* Compiled-call reuse in the trie: a probe sharing a prefix with an
   earlier run re-lowers only its new suffix. *)
let test_cache_ccall_reuse () =
  let saved = Exec.compiled_enabled () in
  Fun.protect ~finally:(fun () -> Exec.set_compiled saved) @@ fun () ->
  Exec.set_compiled true;
  let cache = Exec_cache.create ~version:K.Version.V5_11 () in
  let p =
    prog
      [
        call "open" [ s "/etc/passwd"; i 0L; i 0L ];
        call "read" [ r 0; buf 16; iv 16 ];
        call "close" [ r 0 ];
      ]
  in
  ignore (Exec_cache.run cache p);
  let st = Exec_cache.stats cache in
  Alcotest.(check int) "first run lowers every call" 3
    st.Exec_cache.compiled_calls;
  Alcotest.(check int) "nothing reused yet" 0 st.Exec_cache.reused_ccalls;
  (* Whole-program re-run: served from the full-result table, no
     lowering at all. *)
  ignore (Exec_cache.run cache p);
  Alcotest.(check int) "full hit lowers nothing" 3 st.Exec_cache.compiled_calls;
  (* Dropping the middle call keeps the one-call prefix: its compiled
     form comes from the trie, only the shifted suffix is lowered. *)
  ignore (Exec_cache.run cache (Prog.remove p 1));
  Alcotest.(check int) "shared prefix reused" 1 st.Exec_cache.reused_ccalls;
  Alcotest.(check int) "suffix lowered" 4 st.Exec_cache.compiled_calls

(* The VM consults the engine toggle per run; both engines drive
   identical campaign-visible results through it. *)
let test_vm_engines_agree () =
  let saved = Exec.compiled_enabled () in
  Fun.protect ~finally:(fun () -> Exec.set_compiled saved) @@ fun () ->
  let with_engine flag =
    Exec.set_compiled flag;
    let vm = Vm.create ~version:K.Version.V5_11 ~id:0 () in
    List.map (fun seed -> Vm.run vm (gen_prog seed)) [ 3; 11; 27; 40; 55 ]
  in
  Alcotest.(check bool) "identical run results" true
    (with_engine true = with_engine false)

(* ---- Prog satellite: builder and early-exit predicates ---- *)

(* A random edit script applied to a builder and to the immutable
   program agrees call-for-call. *)
let test_builder_equiv =
  qcheck ~count:80 "Prog.Builder ≡ immutable edits"
    QCheck2.Gen.(pair small_int (list_size (int_range 0 12) (pair small_int bool)))
    (fun (seed, ops) ->
      let p = gen_prog seed in
      if Prog.length p = 0 then true
      else begin
        let b = Prog.Builder.of_prog p in
        let q = ref p in
        List.iter
          (fun (x, push) ->
            let c = Prog.call p (x mod Prog.length p) in
            if push then begin
              Prog.Builder.push b c;
              q := Prog.append !q c
            end
            else begin
              let at = x mod (Prog.Builder.length b + 1) in
              Prog.Builder.insert b at c;
              q := Prog.insert !q at c
            end)
          ops;
        Prog.Builder.to_prog b = !q
        && Prog.Builder.length b = Prog.length !q
      end)

(* The early-exit predicates match their exhaustive definitions, on
   well-formed programs and on deliberately corrupted ones. *)
let test_predicates =
  qcheck ~count:60 "well_formed/uses_result_of ≡ exhaustive scan"
    QCheck2.Gen.(pair small_int bool)
    (fun (seed, corrupt) ->
      let p = gen_prog seed in
      let p =
        if corrupt && Prog.length p > 0 then
          Prog.append p
            {
              Prog.syscall = (Prog.call p 0).Prog.syscall;
              args = [ Value.Res_ref 99 ];
            }
        else p
      in
      let n = Prog.length p in
      let wf_ref =
        let ok = ref true in
        for k = 0 to n - 1 do
          List.iter
            (fun i -> if i >= k || i < 0 then ok := false)
            (Prog.refs_of_call (Prog.call p k))
        done;
        !ok
      in
      let uses_ref i =
        let used = ref false in
        for k = 0 to n - 1 do
          if k > i && List.mem i (Prog.refs_of_call (Prog.call p k)) then
            used := true
        done;
        !used
      in
      Prog.well_formed p = wf_ref
      && List.for_all
           (fun i -> Prog.uses_result_of p i = uses_ref i)
           (List.init n Fun.id))

let suite =
  [
    test_gen_mutate_differential;
    test_minimize_shapes;
    test_derived_forms;
    test_fault_differential;
    case "catalog reproducers agree across engines" test_repros_differential;
    test_cache_engines_agree;
    case "trie reuses compiled calls" test_cache_ccall_reuse;
    case "VM engine toggle" test_vm_engines_agree;
    test_builder_equiv;
    test_predicates;
  ]
