(* Hand-written reproducers for every bug in the catalog. Besides
   serving the per-bug tests, this table proves each injected
   vulnerability is actually reachable through the public syscall
   surface (the fuzzing benches rely on that). *)

module K = Healer_kernel
open Helpers
open Healer_kernel.Version

type repro = {
  key : string;
  version : K.Version.t;
  features : string list;
  fault_call : int option;
  build : unit -> Healer_executor.Prog.t;
}

let sockaddr = group [ i 2L; i 80L; i 1L ]

let kvm_prefix =
  [
    call "openat$kvm" [ i (-100L); s "/dev/kvm"; i 0L ];
    call "ioctl$KVM_CREATE_VM" [ r 0; i 0xae01L ];
  ]

(* Shadows Helpers.r below this point; repro bodies use [Helpers.r]. *)
let r ?(features = []) ?fault_call ~v key build =
  { key; version = v; features; fault_call; build }

let all : repro list =
  [
    (* ---- previously-known shared bugs ---- *)
    r ~v:V5_11 "memfd_create_warn" (fun () ->
        prog [ call "memfd_create" [ ptr (s (String.make 260 'a')); i 0L ] ]);
    r ~v:V5_11 "vfs_read_oob" (fun () ->
        prog
          [
            call "open" [ s "/etc/passwd"; i 0L; i 0x1ffL ];
            call "read" [ Helpers.r 0; buf 8192; iv 8192 ];
          ]);
    r ~v:V5_11 "tcp_disconnect" (fun () ->
        prog
          [
            call "socket$tcp" [ i 2L; i 1L; i 6L ];
            call "connect" [ Helpers.r 0; sockaddr ];
            call "connect$unspec" [ Helpers.r 0; i 0L ];
          ]);
    r ~v:V5_11 "raw_sendmsg_uninit" (fun () ->
        prog
          [
            call "socket$raw" [ i 2L; i 3L; i 255L ];
            call "sendto" [ Helpers.r 0; buf 4; iv 4; i 0L; sockaddr ];
          ]);
    r ~v:V5_11 "tty_init_dev_leak" (fun () ->
        prog
          [
            call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
            call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
          ]);
    r ~v:V5_11 "fb_set_var_div" (fun () ->
        prog
          [
            call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ];
            call "ioctl$FBIOPUT_VSCREENINFO"
              [ Helpers.r 0; i 0x4601L; group [ i 0L; i 600L; i 32L; i 39721L ] ];
          ]);
    r ~v:V5_11 "kvm_arch_vcpu_ioctl_warn" (fun () ->
        prog
          (kvm_prefix
          @ [
              call "ioctl$KVM_CREATE_VCPU" [ Helpers.r 1; i 0xae41L; i 0L ];
              call "ioctl$KVM_SET_LAPIC" [ Helpers.r 2; i 0x4400ae8fL; ptr (buf 8) ];
            ]));
    r ~v:V5_11 "io_ring_exit_work" (fun () ->
        prog
          [
            call "io_uring_setup" [ iv 64; group [ iv 64; iv 64; i 0L ] ];
            call "io_uring_enter" [ Helpers.r 0; iv 20; i 0L; i 0L ];
            call "dup" [ Helpers.r 0 ];
            call "close" [ Helpers.r 0 ];
            call "io_uring_enter" [ Helpers.r 2; iv 1; i 0L; i 0L ];
          ]);
    r ~v:V5_11 "disk_part_iter_uaf" (fun () ->
        prog
          [
            call "openat$loop" [ i (-100L); s "/dev/loop0"; i 0L ];
            call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
            call "ioctl$LOOP_SET_FD" [ Helpers.r 0; i 0x4c00L; Helpers.r 1 ];
            call "ioctl$BLKPG_ADD" [ Helpers.r 0; i 0x1269L; group [ i 1L; i 0L; i 0L ] ];
            call "ioctl$BLKPG_ADD" [ Helpers.r 0; i 0x1269L; group [ i 2L; i 0L; i 0L ] ];
            call "ioctl$BLKPG_DEL" [ Helpers.r 0; i 0x126aL; group [ i 1L; i 0L; i 0L ] ];
            call "ioctl$BLKRRPART" [ Helpers.r 0; i 0x125fL ];
          ]);
    r ~v:V5_11 "ext4_writepages_bug" (fun () ->
        prog
          [
            call "open$ext4" [ s "/mnt/ext4/f0"; i 0x40L; i 0x1ffL ];
            call "ioctl$EXT4_IOC_SETFLAGS" [ Helpers.r 0; i 0x40086602L; group [ i 0x4000L ] ];
            call "write" [ Helpers.r 0; buf 9000; iv 9000 ];
          ]);
    r ~v:V5_11 "unix_release_refcount" (fun () ->
        prog
          [
            call "socket$unix" [ i 1L; i 1L; i 0L ];
            call "bind" [ Helpers.r 0; sockaddr ];
            call "connect" [ Helpers.r 0; sockaddr ];
            call "shutdown" [ Helpers.r 0; i 2L ];
          ]);
    r ~v:V5_11 "ucma_create_id_leak" (fun () ->
        prog
          [
            call "openat$rdma_cm" [ i (-100L); s "/dev/infiniband/rdma_cm"; i 0L ];
            call "ioctl$RDMA_CREATE_ID" [ Helpers.r 0; i 0xc0184600L; i 0L ];
            call "ioctl$RDMA_CREATE_ID" [ Helpers.r 0; i 0xc0184600L; i 0L ];
            call "ioctl$RDMA_CREATE_ID" [ Helpers.r 0; i 0xc0184600L; i 0L ];
            call "ioctl$RDMA_CREATE_ID" [ Helpers.r 0; i 0xc0184600L; i 0L ];
          ]);
    r ~v:V5_11 "v4l2_queryctrl_oob" (fun () ->
        prog
          [
            call "openat$vivid" [ i (-100L); s "/dev/video0"; i 0L ];
            call "ioctl$VIDIOC_S_FMT" [ Helpers.r 0; i 0xc0d05605L; group [ iv 640; iv 480; i 0L ] ];
            call "ioctl$VIDIOC_STREAMON" [ Helpers.r 0; i 0x40045612L ];
            call "ioctl$VIDIOC_QUERYCTRL" [ Helpers.r 0; i 0xc0445624L; i 0x20000L ];
          ]);
    r ~v:V5_11 "llcp_sock_bind_uninit" (fun () ->
        prog
          [
            call "socket$llcp" [ i 39L; i 1L; i 1L ];
            call "bind$llcp" [ Helpers.r 0; group [ i 0L; i 2L; buf 2 ] ];
          ]);
    r ~v:V5_11 "do_umount_null" (fun () ->
        prog
          [
            call "mount$ext4" [ s "/dev/loop0"; s "/mnt/a"; s "ext4"; i 0L; ptr (i 0L) ];
            call "umount" [ s "/mnt/a" ];
            call "umount" [ s "/mnt/a" ];
          ]);
    (* The two deliberately-unguarded fixture races (see the known-race
       catalog in Effect): a write within the 2-tick dirty window, then
       the lock-free read that trips KCSAN. *)
    r ~v:V5_11 "packet_seq_show" (fun () ->
        prog
          [
            call "socket$packet" [ i 17L; i 3L; i 768L ];
            call "sendto$packet" [ Helpers.r 0; buf 64; iv 64; i 0L; ptr (s "lo") ];
            call "socket$packet" [ i 17L; i 3L; i 768L ];
          ]);
    r ~v:V5_11 "legitimize_mnt" (fun () ->
        prog
          [
            call "umount" [ s "/mnt/ext4" ];
            call "open" [ s "/mnt/ext4"; i 0L; i 0L ];
          ]);
    r ~v:V5_11 "dev_ioctl_warn" (fun () ->
        prog
          [
            call "socket$packet" [ i 17L; i 3L; i 768L ];
            call "ioctl$ifup" [ Helpers.r 0; i 0x8914L; ptr (s "et\x01h") ];
          ]);
    r ~v:V5_11 "search_memslots" (fun () ->
        prog
          (kvm_prefix
          @ [
              call "ioctl$KVM_CREATE_VCPU" [ Helpers.r 1; i 0xae41L; i 0L ];
              call "ioctl$KVM_SET_USER_MEMORY_REGION"
                [ Helpers.r 1; i 0x4020ae46L;
                  group [ i 0L; i 0L; i 0x100000L; i 0x10000L; vma ] ];
              call "ioctl$KVM_SET_USER_MEMORY_REGION"
                [ Helpers.r 1; i 0x4020ae46L;
                  group [ i 1L; i 0L; i 0x900000L; i 0x10000L; vma ] ];
              call "ioctl$KVM_RUN" [ Helpers.r 2; i 0xae80L ];
            ]));
    (* ---- USB (executor feature gated) ---- *)
    r ~v:V5_11 ~features:[ "usb" ] "usb_parse_configuration_oob" (fun () ->
        let desc = Bytes.make 24 '\x00' in
        Bytes.set desc 19 '\x50';
        prog [ call "syz_usb_connect" [ Value.Buf desc ] ]);
    r ~v:V5_11 ~features:[ "usb" ] "hub_activate_uaf" (fun () ->
        prog
          [
            call "syz_usb_connect" [ buf 18 ];
            call "syz_usb_disconnect" [ Helpers.r 0 ];
            call "syz_usb_control_io" [ Helpers.r 0; group [ i 0L; i 0L; i 0L; i 0L ] ];
          ]);
    r ~v:V5_11 ~features:[ "usb" ] "gadget_setup_null" (fun () ->
        prog
          [
            call "syz_usb_connect" [ buf 18 ];
            call "syz_usb_control_io" [ Helpers.r 0; group [ i 0x21L; i 0L; i 0L; i 0L ] ];
          ]);
    (* ---- Table 4 ---- *)
    r ~v:V5_11 "console_unlock" (fun () ->
        let ptmx = call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ] in
        let writes = List.init 13 (fun _ -> call "write" [ Helpers.r 0; buf 8; iv 8 ]) in
        prog
          ((ptmx :: writes)
          @ [
              call "ioctl$VT_ACTIVATE" [ Helpers.r 0; i 0x5606L; i 2L ];
              call "syslog" [ i 5L; buf 0; iv 0 ];
            ]));
    r ~v:V5_11 "put_device" (fun () ->
        prog
          [
            call "openat$nbd" [ i (-100L); s "/dev/nbd0"; i 0L ];
            call "socket$tcp" [ i 2L; i 1L; i 6L ];
            call "ioctl$NBD_SET_SOCK" [ Helpers.r 0; i 0xab00L; Helpers.r 1 ];
            call "ioctl$NBD_DISCONNECT" [ Helpers.r 0; i 0xab08L ];
            call "ioctl$NBD_CLEAR_SOCK" [ Helpers.r 0; i 0xab04L ];
            call "ioctl$NBD_DISCONNECT" [ Helpers.r 0; i 0xab08L ];
            call "ioctl$NBD_CLEAR_SOCK" [ Helpers.r 0; i 0xab04L ];
          ]);
    r ~v:V5_11 "l2cap_chan_put" (fun () ->
        prog
          [
            call "socket$l2cap" [ i 31L; i 5L; i 0L ];
            call "bind$l2cap" [ Helpers.r 0; sockaddr ];
            call "connect$l2cap" [ Helpers.r 0; sockaddr ];
            call "setsockopt$l2cap_mode" [ Helpers.r 0; i 6L; i 1L; group [ i 3L ] ];
            call "shutdown$l2cap" [ Helpers.r 0; i 2L ];
          ]);
    r ~v:V5_11 "nbd_disconnect_and_put" (fun () ->
        prog
          [
            call "openat$nbd" [ i (-100L); s "/dev/nbd0"; i 0L ];
            call "socket$tcp" [ i 2L; i 1L; i 6L ];
            call "ioctl$NBD_SET_SOCK" [ Helpers.r 0; i 0xab00L; Helpers.r 1 ];
            call "ioctl$NBD_DO_IT" [ Helpers.r 0; i 0xab03L ];
            call "ioctl$NBD_DISCONNECT" [ Helpers.r 0; i 0xab08L ];
            call "ioctl$NBD_DISCONNECT" [ Helpers.r 0; i 0xab08L ];
          ]);
    r ~v:V5_11 "ioremap_page_range" (fun () ->
        prog
          [
            call "mknod$chr" [ s "/dev/c0"; i 0x2000L; i 0L ];
            call "open$chr" [ s "/dev/c0"; i 0L ];
            call "write" [ Helpers.r 1; buf 16; iv 16 ];
            call "mmap" [ vma; iv 4096; i 4L; i 2L; Helpers.r 1; i 0L ];
          ]);
    r ~v:V5_11 "kvm_hv_irq_routing_update" (fun () ->
        prog
          (kvm_prefix
          @ [
              call "ioctl$KVM_CREATE_IRQCHIP" [ Helpers.r 1; i 0xae60L ];
              call "ioctl$KVM_SET_GSI_ROUTING"
                [ Helpers.r 1; i 0x4008ae6aL; group [ i 0L; i 0L; Value.Group [] ] ];
              call "ioctl$KVM_IRQ_LINE" [ Helpers.r 1; i 0x4008ae61L; group [ i 3L; i 1L ] ];
            ]));
    r ~v:V5_11 "ieee802154_llsec_parse_key_id" (fun () ->
        prog
          [
            call "socket$ieee802154" [ i 36L; i 2L; i 0L ];
            call "ioctl$154_SET_KEY" [ Helpers.r 0; i 0x8b01L; group [ i 2L; i 0L; buf 16 ] ];
          ]);
    r ~v:V5_4 "bit_putcs" (fun () ->
        prog
          [
            call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ];
            call "ioctl$KDFONTOP_SET"
              [ Helpers.r 0; i 0x4b72L; group [ i 0L; i 40L; i 8L; buf 256 ] ];
            call "ioctl$FBIOPUT_VSCREENINFO"
              [ Helpers.r 0; i 0x4601L; group [ i 800L; i 600L; i 32L; i 39721L ] ];
          ]);
    r ~v:V5_4 "tpk_write" (fun () ->
        prog
          [
            call "openat$ttyprintk" [ i (-100L); s "/dev/ttyprintk"; i 0L ];
            call "ioctl$TIOCSETD" [ Helpers.r 0; i 0x5423L; ptr (i 2L) ];
            call "write" [ Helpers.r 0; buf 600; iv 600 ];
          ]);
    r ~v:V5_4 "nl802154_del_llsec_key" (fun () ->
        prog
          [
            call "socket$ieee802154" [ i 36L; i 2L; i 0L ];
            call "ioctl$154_SET_KEY" [ Helpers.r 0; i 0x8b01L; group [ i 0L; i 5L; buf 16 ] ];
            call "ioctl$154_DEL_KEY" [ Helpers.r 0; i 0x8b02L; group [ i 0L; i 9L; buf 0 ] ];
          ]);
    r ~v:V5_4 "llcp_sock_getname" (fun () ->
        prog
          [
            call "socket$llcp" [ i 39L; i 1L; i 1L ];
            call "connect$llcp" [ Helpers.r 0; group [ i 0L; i 8L; buf 8 ] ];
            call "getsockname$llcp" [ Helpers.r 0; group [ i 0L; i 0L; buf 0 ] ];
          ]);
    r ~v:V4_19 "vivid_stop_generating_vid_cap" (fun () ->
        prog
          [
            call "openat$vivid" [ i (-100L); s "/dev/video0"; i 0L ];
            call "ioctl$VIDIOC_S_FMT" [ Helpers.r 0; i 0xc0d05605L; group [ iv 640; iv 480; i 0L ] ];
            call "ioctl$VIDIOC_REQBUFS" [ Helpers.r 0; i 0xc0145608L; i 0L ];
            call "ioctl$VIDIOC_STREAMON" [ Helpers.r 0; i 0x40045612L ];
            call "ioctl$VIDIOC_S_CTRL" [ Helpers.r 0; i 0xc008561cL; ptr (i 1L) ];
            call "ioctl$VIDIOC_S_FMT" [ Helpers.r 0; i 0xc0d05605L; group [ iv 320; iv 240; i 0L ] ];
            call "ioctl$VIDIOC_STREAMOFF" [ Helpers.r 0; i 0x40045613L ];
          ]);
    r ~v:V4_19 "bitfill_aligned" (fun () ->
        prog
          [
            call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ];
            call "ioctl$FBIOPAN_DISPLAY" [ Helpers.r 0; i 0x4606L; group [ i 0L; i 0L; i 0L; i 0L ] ];
            call "ioctl$FBIOPUT_VSCREENINFO"
              [ Helpers.r 0; i 0x4601L; group [ i 800L; i 600L; i 1L; i 39721L ] ];
          ]);
    r ~v:V4_19 "fbcon_get_font" (fun () ->
        prog
          [
            call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ];
            call "ioctl$KDFONTOP_SET"
              [ Helpers.r 0; i 0x4b72L; group [ i 0L; i 40L; i 8L; buf 256 ] ];
            call "ioctl$KDFONTOP_GET" [ Helpers.r 0; i 0x4b72L; group [ i 1L; i 0L; i 0L; buf 0 ] ];
          ]);
    r ~v:V4_19 "vcs_write" (fun () ->
        prog
          [
            call "openat$vcs" [ i (-100L); s "/dev/vcs"; i 0L ];
            call "lseek" [ Helpers.r 0; iv 3000; i 0L ];
            call "write" [ Helpers.r 0; buf 16; iv 16 ];
          ]);
    (* ---- Table 5 ---- *)
    r ~v:V5_11 "ext4_mark_iloc_dirty" (fun () ->
        prog
          [
            call "open$ext4" [ s "/mnt/ext4/f0"; i 0x40L; i 0x1ffL ];
            call "write" [ Helpers.r 0; buf 100; iv 100 ];
            call "fsync$ext4" [ Helpers.r 0 ];
            call "fchmod$ext4" [ Helpers.r 0; iv 420 ];
          ]);
    r ~v:V5_11 "jbd2_journal_file_buffer" (fun () ->
        prog
          [
            call "open$ext4" [ s "/mnt/ext4/f0"; i 0x40L; i 0x1ffL ];
            call "ioctl$EXT4_IOC_SETFLAGS" [ Helpers.r 0; i 0x40086602L; group [ i 0x4000L ] ];
            call "fsync$ext4" [ Helpers.r 0 ];
            call "write" [ Helpers.r 0; buf 100; iv 100 ];
          ]);
    r ~v:V5_11 "ext4_handle_dirty_metadata" (fun () ->
        prog
          [
            call "open$ext4" [ s "/mnt/ext4/f0"; i 0x40L; i 0x1ffL ];
            call "write" [ Helpers.r 0; buf 64; iv 64 ];
            call "fsync$ext4" [ Helpers.r 0 ];
            call "write" [ Helpers.r 0; buf 64; iv 64 ];
            call "ioctl$EXT4_IOC_SETFLAGS" [ Helpers.r 0; i 0x40086602L; group [ i 0L ] ];
          ]);
    r ~v:V5_11 "ext4_fc_commit" (fun () ->
        prog
          [
            call "open$ext4" [ s "/mnt/ext4/f0"; i 0x40L; i 0x1ffL ];
            call "ioctl$EXT4_IOC_FC_COMMIT" [ Helpers.r 0; i 0x6615L ];
            call "ioctl$EXT4_IOC_FC_COMMIT" [ Helpers.r 0; i 0x6615L ];
          ]);
    r ~v:V5_11 "fput_ep_remove" (fun () ->
        prog
          [
            call "epoll_create" [ iv 8 ];
            call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
            call "epoll_ctl$EPOLL_CTL_ADD" [ Helpers.r 0; i 1L; Helpers.r 1; group [ i 1L; i 0L ] ];
            call "epoll_wait" [ Helpers.r 0; group [ i 0L; i 0L ]; iv 8; iv 0 ];
            call "close" [ Helpers.r 1 ];
          ]);
    r ~v:V5_11 "e1000_clean" (fun () ->
        prog
          [
            call "socket$packet" [ i 17L; i 3L; i 768L ];
            call "ioctl$ifup" [ Helpers.r 0; i 0x8914L; ptr (s "eth0") ];
            call "sendto$packet" [ Helpers.r 0; buf 64; iv 64; i 0L; ptr (s "eth0") ];
            call "recvfrom$packet" [ Helpers.r 0; buf 64; iv 64 ];
          ]);
    r ~v:V5_11 "cdev_del" (fun () ->
        prog
          [
            call "mknod$chr" [ s "/dev/c0"; i 0x2000L; i 0L ];
            call "open$chr" [ s "/dev/c0"; i 0L ];
            call "open$chr" [ s "/dev/c0"; i 0L ];
            call "write" [ Helpers.r 2; buf 8; iv 8 ];
            call "unlink" [ s "/dev/c0" ];
            call "close" [ Helpers.r 2 ];
          ]);
    r ~v:V5_11 "cma_cancel_operation" (fun () ->
        prog
          [
            call "openat$rdma_cm" [ i (-100L); s "/dev/infiniband/rdma_cm"; i 0L ];
            call "ioctl$RDMA_CREATE_ID" [ Helpers.r 0; i 0xc0184600L; i 0L ];
            call "ioctl$RDMA_BIND_ADDR" [ Helpers.r 0; i 0xc0184601L; Helpers.r 1; sockaddr ];
            call "ioctl$RDMA_RESOLVE_ADDR" [ Helpers.r 0; i 0xc0184602L; Helpers.r 1; sockaddr ];
            call "ioctl$RDMA_LISTEN" [ Helpers.r 0; i 0xc0184603L; Helpers.r 1; iv 8 ];
            call "ioctl$RDMA_DESTROY_ID" [ Helpers.r 0; i 0xc0184605L; Helpers.r 1 ];
          ]);
    r ~v:V5_11 "macvlan_broadcast" (fun () ->
        prog
          [
            call "socket$packet" [ i 17L; i 3L; i 768L ];
            call "ioctl$macvlan_create" [ Helpers.r 0; i 0x89f0L; ptr (s "eth0") ];
            call "ioctl$ifup" [ Helpers.r 0; i 0x8914L; ptr (s "macvlan0") ];
            call "ioctl$macvlan_del" [ Helpers.r 0; i 0x89f1L; ptr (s "macvlan0") ];
            call "sendto$packet" [ Helpers.r 0; buf 64; iv 64; i 0L; ptr (s "macvlan0") ];
          ]);
    r ~v:V5_11 "rdma_listen" (fun () ->
        prog
          [
            call "openat$rdma_cm" [ i (-100L); s "/dev/infiniband/rdma_cm"; i 0L ];
            call "ioctl$RDMA_CREATE_ID" [ Helpers.r 0; i 0xc0184600L; i 0L ];
            call "ioctl$RDMA_BIND_ADDR" [ Helpers.r 0; i 0xc0184601L; Helpers.r 1; sockaddr ];
            call "ioctl$RDMA_DESTROY_ID" [ Helpers.r 0; i 0xc0184605L; Helpers.r 1 ];
            call "ioctl$RDMA_LISTEN" [ Helpers.r 0; i 0xc0184603L; Helpers.r 1; iv 8 ];
          ]);
    r ~v:V5_11 "ieee802154_tx" (fun () ->
        prog
          [
            call "socket$ieee802154" [ i 36L; i 2L; i 0L ];
            call "dup" [ Helpers.r 0 ];
            call "close" [ Helpers.r 0 ];
            call "sendto$ieee802154" [ Helpers.r 1; buf 32; iv 32; i 0L; sockaddr ];
          ]);
    r ~v:V5_11 "qdisc_calculate_pkt_len" (fun () ->
        prog
          [
            call "socket$packet" [ i 17L; i 3L; i 768L ];
            call "ioctl$ifup" [ Helpers.r 0; i 0x8914L; ptr (s "eth0") ];
            call "ioctl$qdisc_add" [ Helpers.r 0; i 0x89f2L; ptr (s "eth0"); i 0L ];
            call "sendto$packet" [ Helpers.r 0; buf 3000; iv 3000; i 0L; ptr (s "eth0") ];
          ]);
    r ~v:V5_11 "n_tty_open" (fun () ->
        prog
          [
            call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
            call "ioctl$TIOCSETD" [ Helpers.r 0; i 0x5423L; ptr (i 21L) ];
            call "ioctl$TIOCSTI" [ Helpers.r 0; i 0x5412L; ptr (i 65L) ];
            call "ioctl$TIOCSETD" [ Helpers.r 0; i 0x5423L; ptr (i 0L) ];
          ]);
    r ~v:V5_11 "build_skb" (fun () ->
        prog
          [
            call "socket$tcp" [ i 2L; i 1L; i 6L ];
            call "connect" [ Helpers.r 0; sockaddr ];
            call "setsockopt$SO_SNDBUF" [ Helpers.r 0; i 1L; i 7L; group [ iv 100 ] ];
            call "sendto" [ Helpers.r 0; buf 9000; iv 9000; i 0L; sockaddr ];
          ]);
    r ~v:V5_11 "kvm_vm_ioctl_unregister_coalesced_mmio" (fun () ->
        prog
          (kvm_prefix
          @ [
              call "ioctl$KVM_REGISTER_COALESCED_MMIO"
                [ Helpers.r 1; i 0x4010ae67L; group [ i 0x1000L; i 16L; i 0L ] ];
              call "ioctl$KVM_UNREGISTER_COALESCED_MMIO"
                [ Helpers.r 1; i 0x4010ae68L; group [ i 0x2000L; i 16L; i 0L ] ];
            ]));
    r ~v:V5_11 "blk_add_partitions" (fun () ->
        prog
          [
            call "openat$loop" [ i (-100L); s "/dev/loop0"; i 0L ];
            call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
            call "ioctl$LOOP_SET_FD" [ Helpers.r 0; i 0x4c00L; Helpers.r 1 ];
            call "ioctl$BLKPG_ADD" [ Helpers.r 0; i 0x1269L; group [ i 1L; i 0L; i 0L ] ];
            call "ioctl$BLKPG_DEL" [ Helpers.r 0; i 0x126aL; group [ i 1L; i 0L; i 0L ] ];
            call "ioctl$BLKRRPART" [ Helpers.r 0; i 0x125fL ];
          ]);
    r ~v:V5_11 "kvm_io_bus_unregister_dev" (fun () ->
        prog
          (kvm_prefix
          @ [
              call "ioctl$KVM_IOEVENTFD"
                [ Helpers.r 1; i 0x4040ae79L; group [ i 0x1000L; i 0L; i 0L ] ];
              call "ioctl$KVM_IOEVENTFD"
                [ Helpers.r 1; i 0x4040ae79L; group [ i 0x2000L; i 4L; i 0L ] ];
            ]));
    r ~v:V5_11 "io_uring_cancel_task_requests" (fun () ->
        prog
          [
            call "io_uring_setup" [ iv 64; group [ iv 64; iv 64; i 0L ] ];
            call "io_uring_register$BUFFERS"
              [ Helpers.r 0; i 0L; ptr (Value.Group [ Value.Group [ vma; i 4096L ] ]); iv 1 ];
            call "io_uring_enter" [ Helpers.r 0; iv 4; i 0L; i 0L ];
            call "io_uring_register$UNREGISTER_BUFFERS" [ Helpers.r 0; i 1L; ptr (i 0L); i 0L ];
            call "io_uring_enter" [ Helpers.r 0; iv 1; i 0L; i 1L ];
          ]);
    r ~v:V5_11 "gsmld_attach_gsm" (fun () ->
        prog
          [
            call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
            call "ioctl$TIOCSETD" [ Helpers.r 0; i 0x5423L; ptr (i 21L) ];
            call "ioctl$TIOCSETD" [ Helpers.r 0; i 0x5423L; ptr (i 21L) ];
          ]);
    r ~v:V5_6 "drop_nlink" (fun () ->
        prog
          [
            call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
            call "link" [ s "/tmp/f0"; s "/tmp/l0" ];
            call "fstat" [ Helpers.r 0; group [ i 0L; i 0L; i 0L ] ];
            call "unlink" [ s "/tmp/f0" ];
          ]);
    r ~v:V5_6 "kvm_gfn_to_hva_cache_init" (fun () ->
        prog
          (kvm_prefix
          @ [
              call "ioctl$KVM_CREATE_VCPU" [ Helpers.r 1; i 0xae41L; i 0L ];
              call "ioctl$KVM_SET_USER_MEMORY_REGION"
                [ Helpers.r 1; i 0x4020ae46L;
                  group [ i 0L; i 0L; i 0L; i 0x1000000000000000L; vma ] ];
              call "ioctl$KVM_RUN" [ Helpers.r 2; i 0xae80L ];
            ]));
    r ~v:V5_6 "nfs23_parse_monolithic" (fun () ->
        prog
          [
            call "mount$nfs"
              [ s "10.0.0.1:/export"; s "/mnt/a"; group [ i 3L; i 300L; buf 16 ] ];
          ]);
    r ~v:V5_6 "rxrpc_lookup_local" (fun () ->
        prog
          [
            call "socket$rxrpc" [ i 33L; i 2L; i 0L ];
            call "bind$rxrpc" [ Helpers.r 0; sockaddr ];
            call "bind$rxrpc" [ Helpers.r 0; sockaddr ];
            call "connect" [ Helpers.r 0; sockaddr ];
          ]);
    r ~v:V5_6 ~fault_call:1 "fill_thread_core_info" (fun () ->
        prog
          [
            call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
            call "write" [ Helpers.r 0; buf 16; iv 16 ];
          ]);
    r ~v:V5_6 "rds_ib_add_conn" (fun () ->
        prog
          [
            call "socket$rds" [ i 21L; i 5L; i 0L ];
            call "setsockopt$rds_ib" [ Helpers.r 0; i 276L; i 1L; group [ i 1L ] ];
            call "connect" [ Helpers.r 0; sockaddr ];
          ]);
    r ~v:V5_0 "vcs_scr_readw" (fun () ->
        prog
          [
            call "openat$vcs" [ i (-100L); s "/dev/vcs"; i 0L ];
            call "ioctl$VT_DISALLOCATE" [ Helpers.r 0; i 0x5608L; i 1L ];
            call "read" [ Helpers.r 0; buf 16; iv 16 ];
          ]);
    r ~v:V5_0 "n_tty_receive_buf_common" (fun () ->
        prog
          [
            call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
            call "read" [ Helpers.r 0; buf 8; iv 8 ];
            call "ioctl$TIOCSETD" [ Helpers.r 0; i 0x5423L; ptr (i 2L) ];
            call "ioctl$TIOCSETD" [ Helpers.r 0; i 0x5423L; ptr (i 3L) ];
            call "ioctl$TIOCSTI" [ Helpers.r 0; i 0x5412L; ptr (i 65L) ];
          ]);
    r ~v:V5_0 "soft_cursor" (fun () ->
        prog
          [
            call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ];
            call "ioctl$FBIOPAN_DISPLAY" [ Helpers.r 0; i 0x4606L; group [ i 0L; i 0L; i 0L; i 0L ] ];
            call "ioctl$FBIOPUT_VSCREENINFO"
              [ Helpers.r 0; i 0x4601L; group [ i 400L; i 300L; i 32L; i 39721L ] ];
            call "ioctl$FBIO_CURSOR" [ Helpers.r 0; i 0x4608L; group [ i 100L; i 0L; buf 8 ] ];
          ]);
    r ~v:V5_0 "io_submit_one" (fun () ->
        prog
          [
            call "io_setup" [ iv 8 ];
            call "io_submit" [ Helpers.r 0; iv 2; ptr (Value.Group []) ];
            call "io_destroy" [ Helpers.r 0 ];
            call "io_submit" [ Helpers.r 0; iv 1; ptr (Value.Group []) ];
          ]);
    r ~v:V5_0 "free_ioctx_users" (fun () ->
        prog
          [
            call "io_setup" [ iv 8 ];
            call "io_submit" [ Helpers.r 0; iv 2; ptr (Value.Group []) ];
            call "io_destroy" [ Helpers.r 0 ];
            call "io_destroy" [ Helpers.r 0 ];
          ]);
    r ~v:V4_19 "fb_var_to_videomode" (fun () ->
        prog
          [
            call "openat$fb0" [ i (-100L); s "/dev/fb0"; i 0L ];
            call "ioctl$FBIOPAN_DISPLAY" [ Helpers.r 0; i 0x4606L; group [ i 0L; i 0L; i 0L; i 0L ] ];
            call "ioctl$FBIOPUT_VSCREENINFO"
              [ Helpers.r 0; i 0x4601L; group [ i 1024L; i 768L; i 32L; i 0L ] ];
          ]);
    r ~v:V4_19 "fs_reclaim_acquire" (fun () ->
        prog
          [
            call "open" [ s "/tmp/f0"; i 0x40L; i 0x1ffL ];
            call "write" [ Helpers.r 0; buf 64; iv 64 ];
            call "mmap" [ vma; iv 4096; i 1L; i 2L; Helpers.r 0; i 0L ];
            call "fallocate" [ Helpers.r 0; i 3L; i 0L; i 0x200000L ];
          ]);
    r ~v:V4_19 "reiserfs_fill_super" (fun () ->
        prog
          [
            call "mount$reiserfs"
              [ s "/dev/loop0"; s "/mnt/a"; Value.Buf (Bytes.of_string "jdev=1") ];
          ]);
    (* ---- Netlink ---- *)
    (* Truncated IFLA_INFO_KIND "vlan": the claimed 40-byte attribute
       carries only a 4-byte payload, so the nested policy walk reads
       uninitialized message tail. *)
    r ~v:V5_4 "nla_parse_nested" (fun () ->
        prog
          [
            call "socket$nl_route" [ i 16L; i 3L; i 0L ];
            call "sendmsg$RTM_NEWLINK"
              [
                Helpers.r 0;
                group
                  [
                    iv 32; iv 16; i 0x401L; i 0L;
                    Value.Group [ i 0L; i 0L; i 0L; i 0L; i 0L ];
                    Value.Group
                      [ Value.Group [ Value.Group [ iv 40; iv 1; s "vlan" ] ] ];
                  ];
                i 0L;
              ];
          ]);
    (* Dump batch 1 records offset 2 of 3 links; deleting dummy0 shrinks
       the table to 2 before the resume indexes slot 2. *)
    r ~v:V5_6 "rtnl_dump_ifinfo" (fun () ->
        let ifi = Value.Group [ i 0L; i 0L; i 0L; i 0L; i 0L ] in
        let ifname_attr =
          Value.Group
            [ Value.Group [ Value.Group [ iv 10; iv 3; s "dummy0" ] ] ]
        in
        prog
          [
            call "socket$nl_route" [ i 16L; i 3L; i 0L ];
            call "sendmsg$RTM_NEWLINK"
              [ Helpers.r 0; group [ iv 32; iv 16; i 0x401L; i 0L; ifi; ifname_attr ]; i 0L ];
            call "sendmsg$RTM_GETLINK"
              [ Helpers.r 0; group [ iv 32; iv 18; i 0x301L; i 0L; ifi; Value.Group [] ]; i 0L ];
            call "sendmsg$RTM_DELLINK"
              [ Helpers.r 0; group [ iv 32; iv 17; i 0x1L; i 0L; ifi; ifname_attr ]; i 0L ];
            call "sendmsg$RTM_GETLINK"
              [ Helpers.r 0; group [ iv 32; iv 18; i 0x301L; i 0L; ifi; Value.Group [] ]; i 0L ];
          ]);
    (* GETFAMILY resolves devlink's runtime id, the socket binds to it,
       unregister frees the family, and the next send dispatches through
       the stale pointer. *)
    r ~v:V5_11 "genl_rcv_msg" (fun () ->
        prog
          [
            call "socket$nl_generic" [ i 16L; i 3L; i 16L ];
            call "sendmsg$GETFAMILY"
              [ Helpers.r 0; group [ iv 32; iv 3; iv 2; s "devlink" ]; i 0L ];
            call "bind$nl_generic" [ Helpers.r 0; Helpers.r 1 ];
            call "sendmsg$nlctrl_unregister" [ Helpers.r 0; Helpers.r 1; i 0L ];
            call "sendmsg$genl"
              [
                Helpers.r 0; Helpers.r 1;
                group [ iv 32; iv 1; iv 1; Value.Group [] ];
                i 0L;
              ];
          ]);
  ]
