(* Crash triage, the fuzzing loop and the campaign engine. *)

module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module K = Healer_kernel
open Healer_core
open Helpers

let exec_cb ?(version = K.Version.V5_11) () =
  let kernel = boot ~version () in
  fun p -> snd (Exec.run kernel p)

let crash_prog_with_noise () =
  prog
    [
      call "open" [ s "/etc/passwd"; i 0L; i 0L ];
      call "socket$tcp" [ i 2L; i 1L; i 6L ];
      call "connect" [ r 1; group [ i 2L; i 80L; i 1L ] ];
      call "connect$unspec" [ r 1; i 0L ];
      call "close" [ r 0 ];
    ]

(* ---- symbolization ---- *)

let test_symbolize_all_catalog () =
  (* Every rendered crash log must symbolize back to its bug. *)
  List.iter
    (fun (b : K.Bug.t) ->
      let log =
        K.Crash.render_log ~bug_key:b.K.Bug.key ~risk:b.K.Bug.risk
          ~call_name:"test"
      in
      match K.Crash.symbolize log with
      | Some (key, risk) ->
        Alcotest.(check string) ("key " ^ b.K.Bug.key) b.K.Bug.key key;
        Alcotest.(check string) "risk" (K.Risk.to_string b.K.Bug.risk)
          (K.Risk.to_string risk)
      | None -> Alcotest.fail ("unsymbolizable log for " ^ b.K.Bug.key))
    K.Bug.catalog

let test_symbolize_rejects_noise () =
  Alcotest.(check bool) "not a crash" true (K.Crash.symbolize "hello\nworld" = None);
  Alcotest.(check bool) "unknown address" true
    (K.Crash.symbolize "BUG: KASAN: use-after-free in 0x1\nRIP: 0010:0x1" = None)

(* ---- triage ---- *)

let test_triage_dedup_and_minimize () =
  let t = Triage.create ~exec:(exec_cb ()) in
  let p = crash_prog_with_noise () in
  let result = (exec_cb ()) p in
  let report = Option.get result.Exec.crash in
  Alcotest.(check bool) "first is new" true (Triage.on_crash t ~vtime:10.0 p report);
  Alcotest.(check bool) "second is dup" false (Triage.on_crash t ~vtime:20.0 p report);
  Alcotest.(check int) "one unique" 1 (Triage.unique_count t);
  match Triage.found t "tcp_disconnect" with
  | None -> Alcotest.fail "record missing"
  | Some record ->
    Alcotest.(check (float 1e-9)) "first time kept" 10.0 record.Triage.first_found;
    (* The reproducer is the 3-call core: socket, connect, unspec. *)
    Alcotest.(check int) "minimized length" 3 record.Triage.repro_len;
    let rerun = (exec_cb ()) record.Triage.reproducer in
    check_crash "reproducer still crashes" (Some "tcp_disconnect") rerun

let test_triage_distinct_bugs () =
  let t = Triage.create ~exec:(exec_cb ()) in
  let feed p =
    let result = (exec_cb ()) p in
    match result.Exec.crash with
    | Some report -> ignore (Triage.on_crash t ~vtime:1.0 p report)
    | None -> Alcotest.fail "expected a crash"
  in
  feed (crash_prog_with_noise ());
  feed
    (prog
       [
         call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
         call "openat$ptmx" [ i (-100L); s "/dev/ptmx"; i 0L ];
       ]);
  Alcotest.(check int) "two uniques" 2 (Triage.unique_count t);
  Alcotest.(check int) "ordered records" 2 (List.length (Triage.records t))

(* ---- fuzzer loop ---- *)

let short_run ?(tool = Fuzzer.Healer) ?(version = K.Version.V5_11) ?(minutes = 20.) ()
    =
  let cfg = Fuzzer.config ~seed:3 ~tool ~version () in
  let f = Fuzzer.create cfg in
  Fuzzer.run_until f (minutes *. 60.0);
  f

let test_fuzzer_progresses () =
  let f = short_run () in
  Alcotest.(check bool) "coverage" true (Fuzzer.coverage f > 100);
  Alcotest.(check bool) "execs" true (Fuzzer.execs f > 100);
  Alcotest.(check bool) "corpus" true (Corpus.size (Fuzzer.corpus f) > 0);
  Alcotest.(check bool) "clock advanced" true (Fuzzer.now f >= 20.0 *. 60.0)

let test_fuzzer_samples_monotone () =
  let f = short_run () in
  let samples = Fuzzer.samples f in
  Alcotest.(check bool) "sampled" true (List.length samples >= 19);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "coverage non-decreasing" true (monotone samples);
  let times = List.map fst samples in
  Alcotest.(check bool) "one-minute cadence" true
    (List.for_all2
       (fun a b -> b -. a = 60.0)
       (List.filteri (fun k _ -> k < List.length times - 1) times)
       (List.tl times))

let test_fuzzer_tools_learning () =
  let healer = short_run ~tool:Fuzzer.Healer () in
  Alcotest.(check bool) "healer learns relations" true
    (Fuzzer.relation_count healer > 0);
  Alcotest.(check bool) "healer exposes a table" true
    (Fuzzer.relations healer <> None);
  let minus = short_run ~tool:Fuzzer.Healer_minus () in
  Alcotest.(check int) "healer- has no relations" 0 (Fuzzer.relation_count minus);
  let syzk = short_run ~tool:Fuzzer.Syzkaller () in
  Alcotest.(check bool) "syzkaller has no relation table" true
    (Fuzzer.relations syzk = None)

let test_fuzzer_moonshine_seeds () =
  (* Moonshine starts from the distilled corpus; the others start
     empty, so at time ~0 moonshine's corpus is already populated. *)
  let moon = short_run ~tool:Fuzzer.Moonshine ~minutes:1.0 () in
  let syzk = short_run ~tool:Fuzzer.Syzkaller ~minutes:1.0 () in
  Alcotest.(check bool) "moonshine pre-seeded" true
    (Corpus.size (Fuzzer.corpus moon) > Corpus.size (Fuzzer.corpus syzk))

let test_fuzzer_finds_shallow_bug () =
  (* Any tool should find the depth-2 tcp_disconnect within a few
     virtual hours. *)
  let f = short_run ~tool:Fuzzer.Healer ~minutes:240.0 () in
  Alcotest.(check bool) "found some crash" true
    (Triage.unique_count (Fuzzer.triage f) > 0)

let test_fuzzer_deterministic () =
  let a = short_run ~minutes:10.0 () and b = short_run ~minutes:10.0 () in
  Alcotest.(check int) "same coverage" (Fuzzer.coverage a) (Fuzzer.coverage b);
  Alcotest.(check int) "same execs" (Fuzzer.execs a) (Fuzzer.execs b)

(* ---- campaign ---- *)

let test_campaign_run_one () =
  let run = Campaign.run_one ~hours:0.5 ~seed:2 ~tool:Fuzzer.Healer
      ~version:K.Version.V5_11 () in
  Alcotest.(check bool) "coverage" true (run.Campaign.final_cov > 0);
  Alcotest.(check bool) "samples" true (List.length run.Campaign.samples >= 29);
  Alcotest.(check int) "corpus lengths match size"
    run.Campaign.corpus_size
    (List.length run.Campaign.corpus_lengths)

let test_campaign_math () =
  let mk cov samples =
    {
      Campaign.tool = Fuzzer.Healer;
      version = K.Version.V5_11;
      seed = 1;
      hours = 1.0;
      final_cov = cov;
      samples;
      corpus_size = 0;
      corpus_lengths = [];
      relations = 0;
      crashes = [];
      relation_snapshots = [];
      execs = 0;
      cache_hits = 0;
      cache_misses = 0;
      cache_evictions = 0;
      cache_resumed_calls = 0;
    }
  in
  let base = mk 100 [ (60.0, 50); (120.0, 100) ] in
  let subject = mk 130 [ (60.0, 100); (120.0, 130) ] in
  Alcotest.(check (float 1e-9)) "improvement" 30.0
    (Campaign.improvement_pct ~base subject);
  Alcotest.(check (option (float 1e-9))) "time to coverage" (Some 60.0)
    (Campaign.time_to_coverage subject 100);
  Alcotest.(check (option (float 1e-9))) "speedup" (Some 60.0)
    (Campaign.speedup ~base subject);
  Alcotest.(check (option (float 1e-9))) "unreachable" None
    (Campaign.speedup ~base:subject base)

let test_campaign_average_series () =
  let mk samples =
    {
      Campaign.tool = Fuzzer.Healer;
      version = K.Version.V5_11;
      seed = 1;
      hours = 1.0;
      final_cov = 0;
      samples;
      corpus_size = 0;
      corpus_lengths = [];
      relations = 0;
      crashes = [];
      relation_snapshots = [];
      execs = 0;
      cache_hits = 0;
      cache_misses = 0;
      cache_evictions = 0;
      cache_resumed_calls = 0;
    }
  in
  let avg =
    Campaign.average_series
      [ mk [ (60.0, 10); (120.0, 20) ]; mk [ (60.0, 30); (120.0, 40) ] ]
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "pointwise mean"
    [ (60.0, 20.0); (120.0, 30.0) ]
    avg

let test_fuzzer_ablation_flags () =
  (* The ablation hooks really disable their stages. *)
  let no_dyn =
    Fuzzer.create
      (Fuzzer.config ~seed:3 ~use_dynamic_learning:false ~tool:Fuzzer.Healer
         ~version:K.Version.V5_11 ())
  in
  Fuzzer.run_until no_dyn 1800.0;
  let static_count =
    Relation_table.count (Static_learning.initial_table (Fuzzer.target no_dyn))
  in
  Alcotest.(check int) "no dynamic => static only" static_count
    (Fuzzer.relation_count no_dyn);
  let no_static =
    Fuzzer.create
      (Fuzzer.config ~seed:3 ~use_static_learning:false ~tool:Fuzzer.Healer
         ~version:K.Version.V5_11 ())
  in
  Alcotest.(check int) "no static => empty at boot" 0
    (Fuzzer.relation_count no_static)

let test_fuzzer_fixed_alpha_stays () =
  let f =
    Fuzzer.create
      (Fuzzer.config ~seed:3 ~fixed_alpha:0.9 ~tool:Fuzzer.Healer
         ~version:K.Version.V5_11 ())
  in
  Fuzzer.run_until f 3600.0;
  Alcotest.(check (float 1e-9)) "alpha pinned" 0.9 (Fuzzer.alpha_value f)

let suite =
  [
    case "symbolize full catalog" test_symbolize_all_catalog;
    case "symbolize rejects noise" test_symbolize_rejects_noise;
    case "triage dedup + minimize" test_triage_dedup_and_minimize;
    case "triage distinct bugs" test_triage_distinct_bugs;
    case "fuzzer progresses" test_fuzzer_progresses;
    case "fuzzer samples monotone" test_fuzzer_samples_monotone;
    case "fuzzer learning per tool" test_fuzzer_tools_learning;
    case "fuzzer moonshine seeds" test_fuzzer_moonshine_seeds;
    case "fuzzer finds shallow bug" test_fuzzer_finds_shallow_bug;
    case "fuzzer deterministic" test_fuzzer_deterministic;
    case "campaign run_one" test_campaign_run_one;
    case "campaign math" test_campaign_math;
    case "campaign average series" test_campaign_average_series;
    case "fuzzer ablation flags" test_fuzzer_ablation_flags;
    case "fuzzer fixed alpha" test_fuzzer_fixed_alpha_stays;
  ]
