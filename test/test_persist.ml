(* Relation-table and corpus persistence across campaigns. *)

module Prog = Healer_executor.Prog
module K = Healer_kernel
open Healer_core
open Helpers

let test_relations_roundtrip () =
  let t = Relation_table.create 40 in
  ignore (Relation_table.set t 0 1);
  ignore (Relation_table.set t 5 30);
  ignore (Relation_table.set t 39 0);
  let t' = Relation_table.deserialize (Relation_table.serialize t) in
  Alcotest.(check int) "size" 40 (Relation_table.size t');
  Alcotest.(check (list (pair int int))) "edges preserved"
    (Relation_table.edges t) (Relation_table.edges t')

let test_relations_reject_garbage () =
  let reject s =
    match Relation_table.deserialize s with
    | exception Relation_table.Malformed _ -> ()
    | _ -> Alcotest.fail ("accepted: " ^ s)
  in
  reject "";
  reject "nonsense\n1 2\n";
  reject "healer-relations 4\n9 1\n";
  reject "healer-relations 4\n1 x\n";
  reject "healer-relations 4\n1 2 trailing\n";
  reject "healer-relations 99999999\n";
  (* Loaders surface the typed error as Persist.Corrupt. *)
  let path = Filename.temp_file "healer" ".rel" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.write_atomic ~path "nonsense\n1 2\n";
      match Persist.load_relations ~path with
      | exception Persist.Corrupt _ -> ()
      | _ -> Alcotest.fail "loader accepted garbage")

let test_relations_learned_roundtrip () =
  (* A table learned by an actual campaign survives the roundtrip. *)
  let cfg = Fuzzer.config ~seed:8 ~tool:Fuzzer.Healer ~version:K.Version.V5_11 () in
  let f = Fuzzer.create cfg in
  Fuzzer.run_until f 1200.0;
  let table = Option.get (Fuzzer.relations f) in
  let restored = Relation_table.deserialize (Relation_table.serialize table) in
  Alcotest.(check int) "count preserved" (Relation_table.count table)
    (Relation_table.count restored)

let test_initial_relations_merge () =
  (* Reusing a learned table gives the next campaign a head start. *)
  let saved = Relation_table.create (Healer_syzlang.Target.n_syscalls (tgt ())) in
  ignore (Relation_table.set saved 1 2);
  let cfg = Fuzzer.config ~seed:8 ~tool:Fuzzer.Healer ~version:K.Version.V5_11 () in
  let f = Fuzzer.create ~initial_relations:saved cfg in
  let table = Option.get (Fuzzer.relations f) in
  Alcotest.(check bool) "merged edge present" true (Relation_table.get table 1 2)

let test_corpus_roundtrip () =
  let progs =
    [
      prog [ call "socket$tcp" [ i 2L; i 1L; i 6L ]; call "listen" [ r 0; iv 8 ] ];
      prog [ call "memfd_create" [ ptr (s "m"); i 2L ] ];
    ]
  in
  let restored = Persist.corpus_of_string (tgt ()) (Persist.corpus_to_string progs) in
  Alcotest.(check int) "count" 2 (List.length restored);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "identical encoding"
        (Healer_executor.Serializer.encode a)
        (Healer_executor.Serializer.encode b))
    progs restored

let test_corpus_rejects_garbage () =
  let reject s =
    match Persist.corpus_of_string (tgt ()) s with
    | exception Persist.Corrupt _ -> ()
    | _ -> Alcotest.fail "accepted garbage"
  in
  reject "";
  reject "WRONG!\n";
  let good = Persist.corpus_to_string [ prog [ call "sync$ALL" [ i 0L; i 0L ] ] ] in
  reject (String.sub good 0 (String.length good - 2))

let test_file_roundtrip () =
  let path = Filename.temp_file "healer" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let progs = [ prog [ call "sync$ALL" [ i 0L; i 0L ] ] ] in
      Persist.save_corpus ~path progs;
      Alcotest.(check int) "reloaded" 1
        (List.length (Persist.load_corpus (tgt ()) ~path)))

let test_atomic_write_survives_crash () =
  let path = Filename.temp_file "healer" ".rel" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () ->
      let t = Relation_table.create 8 in
      ignore (Relation_table.set t 1 2);
      Persist.save_relations ~path t;
      (* A crash mid-write leaves a partial temp file; the rename that
         would commit it never ran, so the live file is untouched. *)
      let oc = open_out_bin (path ^ ".tmp") in
      output_string oc "healer-relations 8\n1";
      close_out oc;
      Alcotest.(check (list (pair int int)))
        "previous state loadable after simulated crash"
        (Relation_table.edges t)
        (Relation_table.edges (Persist.load_relations ~path)))

let test_initial_seeds_ingested () =
  let seeds =
    [ prog [ call "socket$tcp" [ i 2L; i 1L; i 6L ]; call "listen" [ r 0; iv 8 ] ] ]
  in
  let cfg = Fuzzer.config ~seed:8 ~tool:Fuzzer.Syzkaller ~version:K.Version.V5_11 () in
  let f = Fuzzer.create ~initial_seeds:seeds cfg in
  Alcotest.(check bool) "corpus pre-populated" true
    (Corpus.size (Fuzzer.corpus f) >= 1)

let suite =
  [
    case "relations roundtrip" test_relations_roundtrip;
    case "relations reject garbage" test_relations_reject_garbage;
    case "learned relations roundtrip" test_relations_learned_roundtrip;
    case "initial relations merge" test_initial_relations_merge;
    case "corpus roundtrip" test_corpus_roundtrip;
    case "corpus rejects garbage" test_corpus_rejects_garbage;
    case "corpus file roundtrip" test_file_roundtrip;
    case "atomic write survives mid-write crash" test_atomic_write_survives_crash;
    case "initial seeds ingested" test_initial_seeds_ingested;
  ]
