module Lexer = Healer_syzlang.Lexer
module Parser = Healer_syzlang.Parser
module Target = Healer_syzlang.Target
module Ty = Healer_syzlang.Ty
module Field = Healer_syzlang.Field
module Syscall = Healer_syzlang.Syscall
open Helpers

(* ---- lexer ---- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basic () =
  match toks "open(file fd)" with
  | [ Lexer.IDENT "open"; Lexer.LPAREN; Lexer.IDENT "file"; Lexer.IDENT "fd";
      Lexer.RPAREN; Lexer.NEWLINE; Lexer.EOF ] ->
    ()
  | ts -> Alcotest.fail (Printf.sprintf "unexpected tokens (%d)" (List.length ts))

let test_lexer_idents_with_dollar () =
  match toks "ioctl$KVM_RUN" with
  | [ Lexer.IDENT "ioctl$KVM_RUN"; Lexer.NEWLINE; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "specialized name should lex as one ident"

let test_lexer_numbers () =
  match toks "1 0x2a -7 -0x10" with
  | [ Lexer.INT 1L; Lexer.INT 42L; Lexer.INT (-7L); Lexer.INT (-16L);
      Lexer.NEWLINE; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "number lexing"

let test_lexer_strings () =
  match toks {|"/dev/kvm"|} with
  | [ Lexer.STRING "/dev/kvm"; Lexer.NEWLINE; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "string lexing"

let test_lexer_comments () =
  match toks "# a comment\nfoo # trailing\n" with
  | [ Lexer.IDENT "foo"; Lexer.NEWLINE; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comments should vanish"

let test_lexer_newline_in_brackets () =
  (* Newlines inside brackets do not end the declaration. *)
  let ts = toks "f(a\nint32,\nb int64)" in
  let newlines = List.length (List.filter (fun t -> t = Lexer.NEWLINE) ts) in
  Alcotest.(check int) "only the final newline" 1 newlines

let test_lexer_blank_lines_collapse () =
  let ts = toks "a\n\n\nb\n" in
  let newlines = List.length (List.filter (fun t -> t = Lexer.NEWLINE) ts) in
  Alcotest.(check int) "collapsed" 2 newlines

let test_lexer_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("should reject: " ^ src)
  in
  expect_error "\"unterminated";
  expect_error "@";
  expect_error "0x"

(* ---- parser ---- *)

let parse_one src =
  match Parser.parse src with
  | [ d ] -> d
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 decl, got %d" (List.length ds))

let test_parse_resource () =
  match parse_one "resource fd[int32]: -1 0" with
  | Parser.Resource { name = "fd"; parent = "int32"; values = [ -1L; 0L ] } -> ()
  | _ -> Alcotest.fail "resource decl"

let test_parse_flags () =
  match parse_one "flags open_flags = 0x0 0x1 0x2" with
  | Parser.Flagset { name = "open_flags"; values = [ 0L; 1L; 2L ] } -> ()
  | _ -> Alcotest.fail "flags decl"

let test_parse_struct () =
  match parse_one "struct st { a int32, b ptr[in, int64] }" with
  | Parser.Structdef { name = "st"; fields = [ fa; fb ] } -> (
    Alcotest.(check string) "field a" "a" fa.Field.fname;
    match fb.Field.fty with
    | Ty.Ptr { dir = Ty.In; elem = Ty.Int { bits = 64; _ } } -> ()
    | _ -> Alcotest.fail "ptr field type")
  | _ -> Alcotest.fail "struct decl"

let test_parse_call () =
  match parse_one "open(file filename[\"/tmp/x\"], mode const[0x1ff]) fd" with
  | Parser.Call { name = "open"; args = [ _; _ ]; ret = Some "fd" } -> ()
  | _ -> Alcotest.fail "call decl"

let test_parse_type_exprs () =
  match parse_one "f(a int32[0:7], b len[c], c buffer[in], d vma, e proc[100, 4], g array[int8, 2:5])" with
  | Parser.Call { args; _ } -> (
    let types = List.map (fun (f : Field.t) -> f.Field.fty) args in
    match types with
    | [ Ty.Int { bits = 32; range = Some (0L, 7L) }; Ty.Len "c";
        Ty.Buffer { dir = Ty.In }; Ty.Vma; Ty.Proc { start = 100L; step = 4L };
        Ty.Array { elem = Ty.Int { bits = 8; _ }; min_len = 2; max_len = 5 } ] ->
      ()
    | _ -> Alcotest.fail "type expressions")
  | _ -> Alcotest.fail "call decl"

let test_parse_resource_dir_suffix () =
  match parse_one "f(x fd out)" with
  | Parser.Call { args = [ f ]; _ } -> (
    match f.Field.fty with
    | Ty.Res { kind = "fd"; dir = Ty.Out } -> ()
    | _ -> Alcotest.fail "out direction")
  | _ -> Alcotest.fail "call decl"

let test_parse_multiple_decls () =
  let ds = Parser.parse "resource fd[int32]\nopen() fd\nclose(fd fd)\n" in
  Alcotest.(check int) "three declarations" 3 (List.length ds)

let test_parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("should reject: " ^ src)
  in
  expect_error "resource fd";
  expect_error "f(a int32[7:0])";
  expect_error "flags x =";
  expect_error "struct s { }";
  expect_error "f(a ptr[in])";
  expect_error "f(a int32) b c"

(* ---- target compilation ---- *)

let compile src = Target.of_string src

let test_compile_minimal () =
  let t =
    compile
      {|
resource fd[int32]: -1
open(path filename["/x"]) fd
close(fd fd)
|}
  in
  Alcotest.(check int) "two syscalls" 2 (Target.n_syscalls t);
  let o = Target.find_exn t "open" in
  Alcotest.(check (list string)) "open produces fd" [ "fd" ] (Target.produces t o);
  let c = Target.find_exn t "close" in
  Alcotest.(check (list string)) "close consumes fd" [ "fd" ] (Target.consumes t c)

let test_compile_struct_expansion () =
  let t =
    compile
      {|
resource fd[int32]
struct req { f fd, n int32 }
submit(r ptr[in, req])
|}
  in
  let s = Target.find_exn t "submit" in
  Alcotest.(check (list string)) "resource inside struct consumed" [ "fd" ]
    (Target.consumes t s)

let test_compile_inheritance () =
  let t =
    compile
      {|
resource fd[int32]
resource fd_kvm[fd]
openkvm() fd_kvm
close(fd fd)
|}
  in
  Alcotest.(check bool) "fd_kvm subtype of fd" true
    (Target.is_subtype t ~sub:"fd_kvm" ~sup:"fd");
  Alcotest.(check bool) "fd not subtype of fd_kvm" false
    (Target.is_subtype t ~sub:"fd" ~sup:"fd_kvm");
  Alcotest.(check bool) "compatible for consumer fd" true
    (Target.compatible t ~consumer:"fd" ~producer:"fd_kvm");
  (* close accepts the kvm fd through inheritance. *)
  let consumers = Target.consumers_of t "fd_kvm" in
  Alcotest.(check bool) "close consumes fd_kvm-compatible" true
    (List.exists (fun (c : Syscall.t) -> c.Syscall.name = "close") consumers)

let test_compile_errors () =
  let expect_error src =
    match compile src with
    | exception Target.Compile_error _ -> ()
    | _ -> Alcotest.fail ("should reject: " ^ src)
  in
  expect_error "f(a flags[nope])";
  expect_error "resource a[b]";
  expect_error "f(a unknown_thing)";
  expect_error "resource fd[int32]\nopen() fd\nopen() fd";
  expect_error "f(a len[b])";
  expect_error "resource fd[int32]\nf() nope"

let test_compile_cycle () =
  (* Inheritance cycles must be rejected. Parents must be declared, so
     the cycle is a->b->a. *)
  match
    compile "resource a[int32]\nresource b[a]\n"
  with
  | t ->
    Alcotest.(check (option string)) "b parent" (Some "a") (Target.resource_parent t "b")
  | exception Target.Compile_error _ -> Alcotest.fail "valid chain rejected"

let test_full_target_handlers_align () =
  (* Every syscall described by a subsystem must have a handler, and
     every handler must describe a syscall: the dispatcher can never
     hit ENOSYS for its own descriptions. *)
  let t = tgt () in
  let missing = ref [] in
  Array.iter
    (fun (c : Syscall.t) ->
      if Healer_kernel.Kernel.subsystem_of c.Syscall.name = "?" then
        missing := c.Syscall.name :: !missing)
    (Target.syscalls t);
  Alcotest.(check (list string)) "described calls without handler" [] !missing

let test_full_target_sanity () =
  let t = tgt () in
  Alcotest.(check bool) "has enough interfaces" true (Target.n_syscalls t > 200);
  Alcotest.(check bool) "kvm chain present" true
    (Target.find t "ioctl$KVM_RUN" <> None);
  let kinds = Target.resource_kinds t in
  Alcotest.(check bool) "has resources" true (List.length kinds > 20);
  List.iter
    (fun kind ->
      (* producers_of/consumers_of never raise for declared kinds *)
      ignore (Target.producers_of t kind);
      ignore (Target.consumers_of t kind))
    kinds

let test_specialization () =
  let t = tgt () in
  let c = Target.find_exn t "ioctl$KVM_RUN" in
  Alcotest.(check string) "base" "ioctl" c.Syscall.base;
  Alcotest.(check (option string)) "variant" (Some "KVM_RUN") (Syscall.variant c);
  Alcotest.(check bool) "is specialization" true (Syscall.is_specialization c);
  let o = Target.find_exn t "open" in
  Alcotest.(check bool) "open is not" false (Syscall.is_specialization o)

(* The Target.lint checks moved to the Healer_analysis lint pass; see
   test_analysis.ml for their coverage. *)

let test_decl_positions () =
  let t =
    compile
      {|
resource fd[int32]: -1
flags o_flags = 1 2
struct st { a int32, b flags[o_flags] }
open(p ptr[in, st]) fd
close(fd fd)
|}
  in
  Alcotest.(check (option int)) "resource line" (Some 2)
    (Target.decl_line t `Resource "fd");
  Alcotest.(check (option int)) "flags line" (Some 3)
    (Target.decl_line t `Flags "o_flags");
  Alcotest.(check (option int)) "struct line" (Some 4)
    (Target.decl_line t `Struct "st");
  Alcotest.(check (option int)) "call line" (Some 5) (Target.decl_line t `Call "open");
  Alcotest.(check (option int)) "absent decl" None (Target.decl_line t `Union "st")

let test_parse_located_lines () =
  match Parser.parse_located "resource fd[int32]\n\nopen() fd\n" with
  | [ (Parser.Resource _, 1); (Parser.Call _, 3) ] -> ()
  | _ -> Alcotest.fail "located declarations"

let suite =
  [
    case "lexer basic" test_lexer_basic;
    case "lexer $-idents" test_lexer_idents_with_dollar;
    case "lexer numbers" test_lexer_numbers;
    case "lexer strings" test_lexer_strings;
    case "lexer comments" test_lexer_comments;
    case "lexer bracket newlines" test_lexer_newline_in_brackets;
    case "lexer blank lines" test_lexer_blank_lines_collapse;
    case "lexer errors" test_lexer_errors;
    case "parse resource" test_parse_resource;
    case "parse flags" test_parse_flags;
    case "parse struct" test_parse_struct;
    case "parse call" test_parse_call;
    case "parse type exprs" test_parse_type_exprs;
    case "parse dir suffix" test_parse_resource_dir_suffix;
    case "parse multiple" test_parse_multiple_decls;
    case "parse errors" test_parse_errors;
    case "compile minimal" test_compile_minimal;
    case "compile struct expansion" test_compile_struct_expansion;
    case "compile inheritance" test_compile_inheritance;
    case "compile errors" test_compile_errors;
    case "compile chain" test_compile_cycle;
    case "full target: handlers align" test_full_target_handlers_align;
    case "full target: sanity" test_full_target_sanity;
    case "specializations" test_specialization;
    case "decl positions" test_decl_positions;
    case "parse_located lines" test_parse_located_lines;
  ]
