(* One test per catalog bug: its reproducer must crash with exactly its
   signature on its version, and the catalog must be fully covered. *)

module K = Healer_kernel
module Exec = Healer_executor.Exec
open Helpers

let repro_test (rp : Bug_repros.repro) =
  case ("repro " ^ rp.Bug_repros.key) (fun () ->
      let p = rp.Bug_repros.build () in
      let result =
        run ~version:rp.Bug_repros.version ~features:rp.Bug_repros.features
          ?fault_call:rp.Bug_repros.fault_call p
      in
      check_crash "crashes with its own signature" (Some rp.Bug_repros.key)
        result)

let test_catalog_fully_covered () =
  let covered =
    List.map (fun (rp : Bug_repros.repro) -> rp.Bug_repros.key) Bug_repros.all
  in
  let missing =
    List.filter_map
      (fun (b : K.Bug.t) ->
        if List.mem b.K.Bug.key covered then None else Some b.K.Bug.key)
      K.Bug.catalog
  in
  Alcotest.(check (list string)) "every catalog bug has a reproducer" [] missing

let test_catalog_shape () =
  Alcotest.(check int) "table 4 lists 15 bugs" 15
    (List.length (K.Bug.table4_bugs ()));
  Alcotest.(check int)
    "38 previously unknown bugs (33 paper + 3 netlink + 2 races)" 38
    (List.length (K.Bug.unknown_bugs ()));
  Alcotest.(check int) "35 previously known bugs" 35
    (List.length (K.Bug.known_bugs ()));
  let usb_gated =
    List.filter (fun (b : K.Bug.t) -> b.K.Bug.requires = Some "usb") K.Bug.catalog
  in
  Alcotest.(check int) "3 USB-feature bugs" 3 (List.length usb_gated);
  List.iter
    (fun (b : K.Bug.t) ->
      Alcotest.(check bool)
        (b.K.Bug.key ^ " usb bugs are previously known")
        true b.K.Bug.known)
    usb_gated

let test_catalog_addresses_unique () =
  (* Crash-log symbolization depends on distinct fake addresses. *)
  let addrs =
    List.map (fun (b : K.Bug.t) -> K.Crash.address_of b.K.Bug.key) K.Bug.catalog
  in
  Alcotest.(check int) "no address collisions"
    (List.length addrs)
    (List.length (List.sort_uniq Int64.compare addrs))

let test_usb_gated_without_feature () =
  (* Without the usb executor feature the calls fail with ENOSYS and
     the bugs are unreachable — HEALER's configuration. *)
  let rp =
    List.find
      (fun (x : Bug_repros.repro) -> x.Bug_repros.key = "hub_activate_uaf")
      Bug_repros.all
  in
  let result = run ~version:K.Version.V5_11 ~features:[] (rp.Bug_repros.build ()) in
  check_crash "silent without usb feature" None result;
  check_errno "ENOSYS" (Some K.Errno.ENOSYS) result.Exec.calls.(0)

let test_table4_bugs_absent_elsewhere () =
  (* Table 4 bugs exist only on their listed version: the same repro on
     a different version must not produce that signature. *)
  let shifted (v : K.Version.t) : K.Version.t =
    match v with
    | K.Version.V5_11 -> K.Version.V5_4
    | K.Version.V5_4 | K.Version.V5_6 | K.Version.V5_0 | K.Version.V4_19 ->
      K.Version.V5_11
  in
  List.iter
    (fun (b : K.Bug.t) ->
      let rp =
        List.find
          (fun (x : Bug_repros.repro) -> x.Bug_repros.key = b.K.Bug.key)
          Bug_repros.all
      in
      let result =
        run
          ~version:(shifted rp.Bug_repros.version)
          ~features:rp.Bug_repros.features
          ?fault_call:rp.Bug_repros.fault_call (rp.Bug_repros.build ())
      in
      if crash_key result = Some b.K.Bug.key then
        Alcotest.fail (b.K.Bug.key ^ " fired outside its version"))
    (K.Bug.table4_bugs ())

let test_exists_in () =
  let b = K.Bug.find_exn "vcs_scr_readw" in
  Alcotest.(check bool) "5.0 yes" true (K.Bug.exists_in b K.Version.V5_0);
  Alcotest.(check bool) "5.11 yes (no upper bound)" true
    (K.Bug.exists_in b K.Version.V5_11);
  Alcotest.(check bool) "4.19 no" false (K.Bug.exists_in b K.Version.V4_19);
  let t4 = K.Bug.find_exn "bit_putcs" in
  Alcotest.(check bool) "bounded above" false (K.Bug.exists_in t4 K.Version.V5_11)

let suite =
  [
    case "catalog fully covered" test_catalog_fully_covered;
    case "catalog shape" test_catalog_shape;
    case "catalog addresses unique" test_catalog_addresses_unique;
    case "usb gating" test_usb_gated_without_feature;
    case "table4 version bounds" test_table4_bugs_absent_elsewhere;
    case "exists_in" test_exists_in;
  ]
  @ List.map repro_test Bug_repros.all
