(* The sharded campaign service: CRDT merge laws for every state
   component, wire/checkpoint serialization robustness, and the
   coordinator's determinism guarantees (forked == sequential,
   interrupted+resumed == uninterrupted, worker death == no-op). *)

module Bitset = Healer_util.Bitset
module Target = Healer_syzlang.Target
module K = Healer_kernel
module Serializer = Healer_executor.Serializer
module S = Healer_service
open Healer_core
open Helpers

let n_syscalls () = Target.n_syscalls (tgt ())

let sample_progs =
  lazy
    [
      prog [ call "sync$ALL" [ i 0L; i 0L ] ];
      prog [ call "memfd_create" [ ptr (s "m"); i 2L ] ];
      prog
        [ call "socket$tcp" [ i 2L; i 1L; i 6L ]; call "listen" [ r 0; iv 8 ] ];
      prog [ call "socket$udp" [ i 2L; i 2L; i 17L ] ];
    ]

let sample_records =
  lazy
    (let ps = Lazy.force sample_progs in
     let p n = List.nth ps n in
     let risk n = List.nth K.Risk.all (n mod List.length K.Risk.all) in
     [
       {
         Triage.bug_key = "bug_a";
         risk = risk 0;
         signature = "sig_a";
         first_found = 10.0;
         reproducer = p 0;
         repro_len = 1;
       };
       {
         Triage.bug_key = "bug_a";
         risk = risk 0;
         signature = "sig_a";
         first_found = 5.0;
         reproducer = p 2;
         repro_len = 2;
       };
       {
         Triage.bug_key = "bug_b";
         risk = risk 1;
         signature = "sig_b";
         first_found = 99.0;
         reproducer = p 1;
         repro_len = 1;
       };
       {
         Triage.bug_key = "bug_c";
         risk = risk 2;
         signature = "sig_c";
         first_found = 7.0;
         reproducer = p 3;
         repro_len = 1;
       };
     ])

(* ---- generators ---- *)

let gen_state =
  let open QCheck2.Gen in
  let pick_from l = map (fun idx -> List.nth l idx) (int_bound (List.length l - 1)) in
  let* edges =
    small_list (pair (int_bound (n_syscalls () - 1)) (int_bound (n_syscalls () - 1)))
  in
  let* cov = small_list (int_bound 5000) in
  let* progs = small_list (pick_from (Lazy.force sample_progs)) in
  let* crashes = small_list (pick_from (Lazy.force sample_records)) in
  let* execs = small_list (pair (int_bound 3) (int_bound 1000)) in
  return
    (let relations = Relation_table.create (n_syscalls ()) in
     List.iter (fun (a, b) -> ignore (Relation_table.set relations a b)) edges;
     let coverage = Bitset.create () in
     List.iter (Bitset.add coverage) cov;
     {
       S.Shard_state.n_syscalls = n_syscalls ();
       relations;
       coverage;
       corpus = List.map (fun p -> (S.Shard_state.corpus_key p, p)) progs;
       crashes;
       execs;
     })

let gen_edges n =
  QCheck2.Gen.(small_list (pair (int_bound (n - 1)) (int_bound (n - 1))))

let table_of_edges n edges =
  let t = Relation_table.create n in
  List.iter (fun (a, b) -> ignore (Relation_table.set t a b)) edges;
  t

let bitset_of l =
  let b = Bitset.create () in
  List.iter (Bitset.add b) l;
  b

let corpus_of progs =
  let c = Corpus.create (tgt ()) in
  List.iter (fun p -> ignore (Corpus.add c p ~new_blocks:1)) progs;
  c

let corpus_progs c =
  let acc = ref [] in
  Corpus.iter (fun p -> acc := Serializer.encode p :: !acc) c;
  List.sort compare !acc

let record_key (r : Triage.record) =
  (r.Triage.signature, r.Triage.first_found, Serializer.encode r.Triage.reproducer)

(* ---- CRDT law properties ---- *)

let eq = S.Shard_state.equal
let ( <+> ) = S.Shard_state.merge

let state_props =
  let open QCheck2.Gen in
  [
    qcheck ~count:100 "state merge commutative" (pair gen_state gen_state)
      (fun (a, b) -> eq (a <+> b) (b <+> a));
    qcheck ~count:100 "state merge associative"
      (triple gen_state gen_state gen_state)
      (fun (a, b, c) -> eq ((a <+> b) <+> c) (a <+> (b <+> c)));
    qcheck ~count:100 "state merge idempotent" gen_state (fun a ->
        eq (a <+> a) a);
    qcheck ~count:100 "empty is identity" gen_state (fun a ->
        eq (a <+> S.Shard_state.empty ~n_syscalls:(n_syscalls ())) a);
    qcheck ~count:100 "serialization roundtrip" gen_state (fun a ->
        eq a (S.Shard_state.of_string (tgt ()) (S.Shard_state.to_string a)));
    qcheck ~count:100 "canonical bytes: digest agrees across merge order"
      (pair gen_state gen_state)
      (fun (a, b) ->
        String.equal (S.Shard_state.digest (a <+> b)) (S.Shard_state.digest (b <+> a)));
  ]

(* The incremental-protocol laws: a diff is a sparse state that, merged
   back into its base, reconstructs exactly what shipping the full
   state would have. *)
let diff_props =
  let open QCheck2.Gen in
  let diff = S.Shard_state.diff in
  [
    qcheck ~count:100 "apply law: merge base (diff base s) == merge base s"
      (pair gen_state gen_state)
      (fun (base, s) -> eq (base <+> diff ~since:base s) (base <+> s));
    qcheck ~count:100 "self diff is empty" gen_state (fun a ->
        S.Shard_state.is_empty (diff ~since:a a));
    qcheck ~count:100 "diff against a superset is empty"
      (pair gen_state gen_state)
      (fun (a, b) -> S.Shard_state.is_empty (diff ~since:(a <+> b) a));
    qcheck ~count:100 "diff applies idempotently" (pair gen_state gen_state)
      (fun (base, s) ->
        let d = diff ~since:base s in
        eq (base <+> d <+> d) (base <+> d));
    qcheck ~count:100 "diff survives the wire" (pair gen_state gen_state)
      (fun (base, s) ->
        let d =
          S.Shard_state.of_string (tgt ())
            (S.Shard_state.to_string (diff ~since:base s))
        in
        eq (base <+> d) (base <+> s));
  ]

let relation_props =
  let open QCheck2.Gen in
  let n = 40 in
  let t = table_of_edges n in
  let eq a b = Relation_table.edges a = Relation_table.edges b in
  [
    qcheck "relation merge commutative" (pair (gen_edges n) (gen_edges n))
      (fun (a, b) ->
        eq (Relation_table.merge (t a) (t b)) (Relation_table.merge (t b) (t a)));
    qcheck "relation merge associative"
      (triple (gen_edges n) (gen_edges n) (gen_edges n))
      (fun (a, b, c) ->
        eq
          (Relation_table.merge (Relation_table.merge (t a) (t b)) (t c))
          (Relation_table.merge (t a) (Relation_table.merge (t b) (t c))));
    qcheck "relation merge idempotent" (gen_edges n) (fun a ->
        eq (Relation_table.merge (t a) (t a)) (t a));
    qcheck "empty table is identity" (gen_edges n) (fun a ->
        eq (Relation_table.merge (t a) (Relation_table.create n)) (t a));
  ]

let coverage_props =
  let open QCheck2.Gen in
  let ids = small_list (int_bound 10_000) in
  let union a b =
    let d = Bitset.copy (bitset_of a) in
    Bitset.union_into ~dst:d (bitset_of b);
    Bitset.elements d
  in
  [
    qcheck "coverage union commutative" (pair ids ids) (fun (a, b) ->
        union a b = union b a);
    qcheck "coverage union idempotent" ids (fun a -> union a a = Bitset.elements (bitset_of a));
    qcheck "coverage union associative" (triple ids ids ids) (fun (a, b, c) ->
        union (union a b) c = union a (union b c));
  ]

let corpus_props =
  let open QCheck2.Gen in
  let progs = small_list (map (List.nth (Lazy.force sample_progs)) (int_bound 3)) in
  let merged a b =
    let c = corpus_of a in
    ignore (Corpus.merge_into ~dst:c (corpus_of b));
    corpus_progs c
  in
  [
    qcheck "corpus merge commutative" (pair progs progs) (fun (a, b) ->
        merged a b = merged b a);
    qcheck "corpus merge idempotent" progs (fun a ->
        merged a a = corpus_progs (corpus_of a));
    qcheck "corpus merge associative" (triple progs progs progs)
      (fun (a, b, c) ->
        (let ab = corpus_of a in
         ignore (Corpus.merge_into ~dst:ab (corpus_of b));
         ignore (Corpus.merge_into ~dst:ab (corpus_of c));
         corpus_progs ab)
        = merged a (b @ c));
  ]

let crash_props =
  let open QCheck2.Gen in
  let recs = small_list (map (List.nth (Lazy.force sample_records)) (int_bound 3)) in
  let m lists = List.map record_key (Triage.merge_records lists) in
  [
    qcheck "crash merge commutative" (pair recs recs) (fun (a, b) ->
        m [ a; b ] = m [ b; a ]);
    qcheck "crash merge associative" (triple recs recs recs)
      (fun (a, b, c) -> m [ Triage.merge_records [ a; b ]; c ] = m [ a; Triage.merge_records [ b; c ] ]);
    qcheck "crash merge idempotent" recs (fun a -> m [ a; a ] = m [ a ]);
    qcheck "earliest record wins" (pair recs recs) (fun (a, b) ->
        List.for_all
          (fun (r : Triage.record) ->
            List.for_all
              (fun (o : Triage.record) ->
                (not (String.equal o.Triage.signature r.Triage.signature))
                || o.Triage.first_found >= r.Triage.first_found)
              (a @ b))
          (Triage.merge_records [ a; b ]));
  ]

(* ---- wire protocol ---- *)

let test_wire_roundtrip () =
  let buf = Buffer.create 64 in
  S.Wire.put_int buf 0;
  S.Wire.put_int buf 300;
  S.Wire.put_int buf max_int;
  S.Wire.put_str buf "";
  S.Wire.put_str buf "hello \x00 world";
  S.Wire.put_float buf 1.5;
  S.Wire.put_float buf (-0.0);
  let s = Buffer.contents buf in
  let pos = ref 0 in
  Alcotest.(check int) "zero" 0 (S.Wire.get_int s pos);
  Alcotest.(check int) "multi-byte" 300 (S.Wire.get_int s pos);
  Alcotest.(check int) "max_int" max_int (S.Wire.get_int s pos);
  Alcotest.(check string) "empty string" "" (S.Wire.get_str s pos);
  Alcotest.(check string) "binary string" "hello \x00 world" (S.Wire.get_str s pos);
  Alcotest.(check (float 0.0)) "float" 1.5 (S.Wire.get_float s pos);
  Alcotest.(check (float 0.0)) "negative zero" (-0.0) (S.Wire.get_float s pos);
  Alcotest.(check string) "fully consumed" "" (S.Wire.get_all s pos)

let test_wire_frames_over_pipe () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      S.Wire.send_frame w S.Wire.Epoch "payload one";
      (* Stays under the pipe buffer: both ends live in this process,
         so an oversized frame would block the write forever. *)
      S.Wire.send_frame w S.Wire.Delta (String.make 16_000 'x');
      S.Wire.send_frame w S.Wire.Quit "";
      let tag, p = S.Wire.recv_frame r in
      Alcotest.(check bool) "epoch tag" true (tag = S.Wire.Epoch);
      Alcotest.(check string) "payload" "payload one" p;
      let tag, p = S.Wire.recv_frame r in
      Alcotest.(check bool) "delta tag" true (tag = S.Wire.Delta);
      Alcotest.(check int) "large payload intact" 16_000 (String.length p);
      let tag, _ = S.Wire.recv_frame r in
      Alcotest.(check bool) "quit tag" true (tag = S.Wire.Quit);
      Unix.close w;
      match S.Wire.recv_frame r with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "expected EOF after writer closed")

let test_wire_rejects_garbage () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Unix.write_substring w "Z\x05hello" 0 7);
      match S.Wire.recv_frame r with
      | exception S.Wire.Malformed _ -> ()
      | _ -> Alcotest.fail "accepted unknown frame tag")

(* ---- worker determinism and delta folding ---- *)

let small_cfg ?(jobs = 2) ?(epochs = 2) ?(seed = 5) ?(slice = 30.0) () =
  {
    S.Checkpoint.tool = Fuzzer.Healer;
    version = K.Version.V5_11;
    jobs;
    base_seed = seed;
    epochs;
    slice;
  }

let test_worker_deterministic () =
  let cfg = small_cfg () in
  let g = S.Shard_state.of_target (tgt ()) in
  let d1 = S.Worker.run_epoch cfg ~shard:0 ~epoch:0 g in
  let d2 = S.Worker.run_epoch cfg ~shard:0 ~epoch:0 g in
  Alcotest.(check string) "identical delta bytes"
    (S.Shard_state.delta_to_string d1)
    (S.Shard_state.delta_to_string d2)

let test_fold_order_irrelevant () =
  let cfg = small_cfg () in
  let g = S.Shard_state.of_target (tgt ()) in
  let d0 = S.Worker.run_epoch cfg ~shard:0 ~epoch:0 g in
  let d1 = S.Worker.run_epoch cfg ~shard:1 ~epoch:0 g in
  let a = S.Shard_state.apply (S.Shard_state.apply g d0) d1 in
  let b = S.Shard_state.apply (S.Shard_state.apply g d1) d0 in
  Alcotest.(check bool) "two shards fold to the same state either way" true
    (eq a b);
  Alcotest.(check int) "exec counters are exact"
    (d0.S.Shard_state.d_execs + d1.S.Shard_state.d_execs)
    (S.Shard_state.total_execs a)

let test_delta_roundtrip () =
  let cfg = small_cfg () in
  let g = S.Shard_state.of_target (tgt ()) in
  let d = S.Worker.run_epoch cfg ~shard:1 ~epoch:0 g in
  let d' =
    S.Shard_state.delta_of_string (tgt ()) (S.Shard_state.delta_to_string d)
  in
  Alcotest.(check int) "shard" d.S.Shard_state.shard d'.S.Shard_state.shard;
  Alcotest.(check int) "epoch" d.S.Shard_state.epoch d'.S.Shard_state.epoch;
  Alcotest.(check int) "d_execs" d.S.Shard_state.d_execs d'.S.Shard_state.d_execs;
  Alcotest.(check bool) "outcome" true
    (eq d.S.Shard_state.outcome d'.S.Shard_state.outcome)

(* ---- coordinator ---- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = Filename.temp_file "healer-svc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let run ?forked ?mode ?checkpoint_dir ?stop_after ?chaos cfg_or_ck =
  S.Coordinator.run ?forked ?mode ?checkpoint_dir ?stop_after ?chaos cfg_or_ck

let test_forked_equals_sequential () =
  let cfg = small_cfg () in
  let seq = (run ~forked:false (S.Coordinator.initial cfg)).S.Coordinator.final in
  let fkd = (run ~forked:true (S.Coordinator.initial cfg)).S.Coordinator.final in
  Alcotest.(check bool) "bit-identical merged state" true
    (eq seq.S.Checkpoint.state fkd.S.Checkpoint.state);
  Alcotest.(check int) "same epochs completed" seq.S.Checkpoint.completed
    fkd.S.Checkpoint.completed;
  Alcotest.(check bool) "campaign made progress" true
    (S.Shard_state.total_execs seq.S.Checkpoint.state > 0)

let test_interrupted_resume () =
  with_tmpdir @@ fun dir ->
  let cfg = small_cfg ~epochs:3 () in
  let full = (run ~forked:true (S.Coordinator.initial cfg)).S.Coordinator.final in
  (* Kill the campaign after one epoch, then resume from disk. *)
  let part =
    (run ~forked:true ~checkpoint_dir:dir ~stop_after:1
       (S.Coordinator.initial cfg))
      .S.Coordinator.final
  in
  Alcotest.(check int) "stopped early" 1 part.S.Checkpoint.completed;
  let loaded = S.Checkpoint.load (tgt ()) ~path:dir in
  Alcotest.(check bool) "checkpoint holds the interrupted state" true
    (eq part.S.Checkpoint.state loaded.S.Checkpoint.state);
  let resumed = (run ~forked:true ~checkpoint_dir:dir loaded).S.Coordinator.final in
  Alcotest.(check int) "resumed to completion" cfg.S.Checkpoint.epochs
    resumed.S.Checkpoint.completed;
  Alcotest.(check bool) "resumed == uninterrupted (relations, coverage, \
                         corpus, crashes, execs)" true
    (eq full.S.Checkpoint.state resumed.S.Checkpoint.state)

let test_worker_death_respawn () =
  let cfg = small_cfg () in
  let baseline =
    (run ~forked:false (S.Coordinator.initial cfg)).S.Coordinator.final
  in
  let killed = ref 0 in
  let chaos ~epoch pids =
    if epoch = 0 then
      match pids with
      | (_, pid) :: _ ->
        incr killed;
        Unix.kill pid Sys.sigkill
      | [] -> ()
  in
  let out = run ~forked:true ~chaos (S.Coordinator.initial cfg) in
  Alcotest.(check int) "one worker was killed" 1 !killed;
  Alcotest.(check bool) "death was detected and recovered" true
    (out.S.Coordinator.respawns >= 1);
  Alcotest.(check bool) "worker death does not perturb results" true
    (eq baseline.S.Checkpoint.state out.S.Coordinator.final.S.Checkpoint.state)

(* Both forked modes execute the same lag-2 schedule, so the pipelined
   coordinator must land on the barrier oracle's digest, bit for bit —
   and both on the in-process oracle's. *)
let test_async_equals_barrier () =
  let cfg = small_cfg ~epochs:4 ~jobs:3 () in
  let digest_of mode =
    let final =
      (run ~forked:true ~mode (S.Coordinator.initial cfg)).S.Coordinator.final
    in
    Alcotest.(check int) "completed all epochs" cfg.S.Checkpoint.epochs
      final.S.Checkpoint.completed;
    S.Shard_state.digest final.S.Checkpoint.state
  in
  let async = digest_of S.Coordinator.Async in
  let barrier = digest_of S.Coordinator.Barrier in
  let seq =
    S.Shard_state.digest
      (run ~forked:false (S.Coordinator.initial cfg)).S.Coordinator.final
        .S.Checkpoint.state
  in
  Alcotest.(check string) "async == barrier" barrier async;
  Alcotest.(check string) "async == sequential oracle" seq async

(* Killing workers mid-campaign must not perturb the async digest
   either: respawned workers are re-seeded with a full diff and
   reproduce the lost slice exactly. *)
let test_async_chaos_equals_barrier () =
  let cfg = small_cfg ~epochs:3 () in
  let baseline =
    (run ~forked:true ~mode:S.Coordinator.Barrier (S.Coordinator.initial cfg))
      .S.Coordinator.final
  in
  let chaos ~epoch pids =
    if epoch <= 1 then
      match List.nth_opt pids (epoch mod List.length pids) with
      | Some (_, pid) -> Unix.kill pid Sys.sigkill
      | None -> ()
  in
  let out =
    run ~forked:true ~mode:S.Coordinator.Async ~chaos
      (S.Coordinator.initial cfg)
  in
  Alcotest.(check bool) "deaths were recovered" true
    (out.S.Coordinator.respawns >= 1);
  Alcotest.(check string) "chaos async == clean barrier"
    (S.Shard_state.digest baseline.S.Checkpoint.state)
    (S.Shard_state.digest out.S.Coordinator.final.S.Checkpoint.state)

(* Truncated or garbled incremental frames must be rejected loudly
   (Malformed → respawn), never folded as partial state. *)
let test_incremental_frames_reject_corruption () =
  let cfg = small_cfg () in
  let g = S.Shard_state.of_target (tgt ()) in
  let d = S.Worker.run_epoch cfg ~shard:0 ~epoch:0 g in
  let full = S.Shard_state.apply g d in
  let diff_blob =
    S.Shard_state.to_string (S.Shard_state.diff ~since:g full)
  in
  let delta_blob = S.Shard_state.delta_to_string d in
  let check_rejects what parse blob =
    List.iter
      (fun pct ->
        let len = String.length blob * pct / 100 in
        if len < String.length blob then
          match parse (String.sub blob 0 len) with
          | exception S.Shard_state.Malformed _ -> ()
          | _ ->
            Alcotest.fail
              (Printf.sprintf "accepted %d%% truncated %s frame" pct what))
      [ 0; 7; 25; 50; 75; 93; 99 ];
    match parse (blob ^ "\x01") with
    | exception S.Shard_state.Malformed _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted %s trailing garbage" what)
  in
  check_rejects "diff" (S.Shard_state.of_string (tgt ())) diff_blob;
  check_rejects "delta" (S.Shard_state.delta_of_string (tgt ())) delta_blob

(* ---- checkpoint durability ---- *)

let test_checkpoint_roundtrip () =
  let cfg = small_cfg ~epochs:1 () in
  let ck = (run ~forked:false (S.Coordinator.initial cfg)).S.Coordinator.final in
  let ck' = S.Checkpoint.of_string (tgt ()) (S.Checkpoint.to_string ck) in
  Alcotest.(check bool) "state" true (eq ck.S.Checkpoint.state ck'.S.Checkpoint.state);
  Alcotest.(check int) "completed" ck.S.Checkpoint.completed ck'.S.Checkpoint.completed;
  Alcotest.(check int) "jobs" ck.S.Checkpoint.config.S.Checkpoint.jobs
    ck'.S.Checkpoint.config.S.Checkpoint.jobs;
  Alcotest.(check (float 0.0)) "slice" ck.S.Checkpoint.config.S.Checkpoint.slice
    ck'.S.Checkpoint.config.S.Checkpoint.slice

let test_checkpoint_rejects_truncation () =
  let cfg = small_cfg ~epochs:1 () in
  let ck = (run ~forked:false (S.Coordinator.initial cfg)).S.Coordinator.final in
  let s = S.Checkpoint.to_string ck in
  List.iter
    (fun pct ->
      let len = String.length s * pct / 100 in
      if len < String.length s then
        match S.Checkpoint.of_string (tgt ()) (String.sub s 0 len) with
        | exception S.Checkpoint.Malformed _ -> ()
        | _ -> Alcotest.fail (Printf.sprintf "accepted %d%% truncation" pct))
    [ 0; 3; 10; 25; 50; 75; 90; 99 ];
  (* Unknown future format versions are rejected, not misparsed. *)
  let bumped = Bytes.of_string s in
  Bytes.set bumped 6 '\255';
  (match S.Checkpoint.of_string (tgt ()) (Bytes.to_string bumped) with
  | exception S.Checkpoint.Malformed _ -> ()
  | _ -> Alcotest.fail "accepted unknown format version");
  match S.Checkpoint.of_string (tgt ()) (s ^ "x") with
  | exception S.Checkpoint.Malformed _ -> ()
  | _ -> Alcotest.fail "accepted trailing bytes"

let test_checkpoint_midwrite_crash () =
  with_tmpdir @@ fun dir ->
  let cfg = small_cfg ~epochs:1 () in
  let ck = (run ~forked:false (S.Coordinator.initial cfg)).S.Coordinator.final in
  S.Checkpoint.save ~dir ck;
  (* A crash mid-write leaves a partial temp file behind but never
     touches the live checkpoint: the rename is the commit point. *)
  let oc = open_out_bin (S.Checkpoint.file dir ^ ".tmp") in
  output_string oc "partial garbage cut off mid-wr";
  close_out oc;
  let loaded = S.Checkpoint.load (tgt ()) ~path:dir in
  Alcotest.(check bool) "previous checkpoint intact after simulated crash" true
    (eq ck.S.Checkpoint.state loaded.S.Checkpoint.state)

let test_checkpoint_merge () =
  let ck seed =
    (run ~forked:false (S.Coordinator.initial (small_cfg ~epochs:1 ~seed ())))
      .S.Coordinator.final
  in
  let a = ck 5 and b = ck 23 in
  let ab = S.Checkpoint.merge a b and ba = S.Checkpoint.merge b a in
  Alcotest.(check bool) "merged states agree either way" true
    (eq ab.S.Checkpoint.state ba.S.Checkpoint.state);
  Alcotest.(check bool) "merge dominates both inputs" true
    (eq ab.S.Checkpoint.state
       (S.Shard_state.merge ab.S.Checkpoint.state a.S.Checkpoint.state)
    && eq ab.S.Checkpoint.state
         (S.Shard_state.merge ab.S.Checkpoint.state b.S.Checkpoint.state))

let suite =
  state_props @ diff_props @ relation_props @ coverage_props @ corpus_props
  @ crash_props
  @ [
      case "wire primitives roundtrip" test_wire_roundtrip;
      case "wire frames over a pipe" test_wire_frames_over_pipe;
      case "wire rejects unknown tags" test_wire_rejects_garbage;
      case "worker epoch is deterministic" test_worker_deterministic;
      case "delta fold order is irrelevant" test_fold_order_irrelevant;
      case "delta roundtrip" test_delta_roundtrip;
      case "forked == sequential" test_forked_equals_sequential;
      case "interrupted + resumed == uninterrupted" test_interrupted_resume;
      case "worker death: respawn, same results" test_worker_death_respawn;
      case "pipelined == barrier == sequential" test_async_equals_barrier;
      case "chaos kills leave the async digest fixed"
        test_async_chaos_equals_barrier;
      case "incremental frames reject corruption"
        test_incremental_frames_reject_corruption;
      case "checkpoint roundtrip" test_checkpoint_roundtrip;
      case "checkpoint rejects corruption" test_checkpoint_rejects_truncation;
      case "mid-write crash keeps previous checkpoint" test_checkpoint_midwrite_crash;
      case "checkpoint merge" test_checkpoint_merge;
    ]
