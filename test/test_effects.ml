(* The effect model: one hand-broken fixture per effect-*/race-*/
   rel-infer-* check ID, golden "the shipped 20-subsystem corpus is
   effect-clean" tests, runtime observed-vs-declared validation, the
   effect-count accounting hooks, and property suites asserting the
   gen/mutate/minimize pipeline never trips the runtime effect
   validator (armed suite-wide by main.ml via
   [Progcheck.set_debug true]). *)

module E = Healer_kernel.Effect
module Lock = Healer_kernel.Lock
module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Target = Healer_syzlang.Target
module Rng = Healer_util.Rng
module D = Healer_util.Diagnostic
module A = Healer_analysis.Analysis
module P = Healer_analysis.Pass
module K = Healer_kernel
open Healer_core
open Helpers

(* ---- fixture models (plain records: nothing below touches the
   process-global slot or race registries) ---- *)

let cls ?guards ~rank name = Lock.make ?guards ~rank name

let has id (fs : E.finding list) =
  List.exists (fun (f : E.finding) -> f.E.check = id) fs

let find_f id (fs : E.finding list) =
  List.find (fun (f : E.finding) -> f.E.check = id) fs

let expect_only id fs =
  Alcotest.(check bool) (id ^ " reported") true (has id fs);
  List.iter
    (fun (f : E.finding) ->
      if f.E.check <> id then
        Alcotest.failf "unexpected check %s (%s)" f.E.check f.E.msg)
    fs

let no_locks = { Lock.classes = []; specs = [] }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A two-handler baseline every broken fixture perturbs: a writer and
   a reader sharing slot "sa" under one guarding class. *)
let clean_effects () =
  {
    E.slots = [ "sa" ];
    especs =
      [
        ("s1", "h_wr", E.spec ~writes:[ "sa" ] ());
        ("s1", "h_rd", E.spec ~reads:[ "sa" ] ());
      ];
  }

let clean_locks () =
  {
    Lock.classes = [ cls ~rank:10 ~guards:[ "sa" ] "a" ];
    specs =
      [
        ("s1", "h_wr", Lock.scoped ~touches:[ "sa" ] [ "a" ]);
        ("s1", "h_rd", Lock.scoped [ "a" ]);
      ];
  }

let test_clean_fixture () =
  Alcotest.(check int) "clean model has no findings" 0
    (List.length (E.check_model ~lock:(clean_locks ()) (clean_effects ())));
  Alcotest.(check int) "and no race candidates" 0
    (List.length (E.races ~lock:(clean_locks ()) (clean_effects ())))

(* ---- effect-* drift fixtures ---- *)

let test_unknown_slot () =
  let m =
    { E.slots = [ "sa" ]; especs = [ ("s", "h", E.spec ~reads:[ "ghost" ] ()) ] }
  in
  expect_only "effect-unknown-slot" (E.check_model ~lock:no_locks m);
  (* The wildcard is vocabulary, not drift. *)
  let m' =
    { E.slots = []; especs = [ ("s", "h", E.spec ~reads:[ E.wildcard ] ()) ] }
  in
  Alcotest.(check int) "wildcard accepted" 0
    (List.length (E.check_model ~lock:no_locks m'))

let test_orphan_spec () =
  let m = { E.slots = [ "sa" ]; especs = [ ("s", "h", E.spec ()) ] } in
  expect_only "effect-orphan-spec"
    (E.check_model ~lock:no_locks ~handlers:[ ("other", "s") ] m);
  (* Without a handler table the check is disabled. *)
  Alcotest.(check int) "no table, no orphan" 0
    (List.length (E.check_model ~lock:no_locks m))

let test_missing_spec () =
  let lock = clean_locks () in
  let m = { E.slots = [ "sa" ]; especs = [] } in
  expect_only "effect-missing-spec" (E.check_model ~lock m);
  let f = find_f "effect-missing-spec" (E.check_model ~lock m) in
  Alcotest.(check string) "subject names the handler" "s1/h_wr" f.E.subject

let test_guard_mismatch () =
  (* The lock spec claims h_wr mutates "sa"; the effect spec only
     reads it. *)
  let m =
    { E.slots = [ "sa" ]; especs = [ ("s1", "h_wr", E.spec ~reads:[ "sa" ] ()) ] }
  in
  expect_only "effect-guard-mismatch" (E.check_model ~lock:(clean_locks ()) m)

(* ---- runtime trace validation (check_trace) ---- *)

let test_trace_clean () =
  let m = clean_effects () in
  Alcotest.(check int) "declared trace validates" 0
    (List.length
       (E.check_trace m ~subsystem:"s1" ~handler:"h_wr" [ (true, "sa") ]));
  (* A write subsumes a read of the same slot. *)
  Alcotest.(check int) "write subsumes read" 0
    (List.length
       (E.check_trace m ~subsystem:"s1" ~handler:"h_wr" [ (false, "sa") ]))

let test_undeclared_read () =
  let m = clean_effects () in
  let fs = E.check_trace m ~subsystem:"s1" ~handler:"h_rd" [ (false, "sb") ] in
  expect_only "effect-undeclared-read" fs;
  (* A spec-less handler must not touch instrumented state at all. *)
  let fs =
    E.check_trace m ~subsystem:"s9" ~handler:"h_nospec" [ (false, "sa") ]
  in
  expect_only "effect-undeclared-read" fs

let test_undeclared_write () =
  let m = clean_effects () in
  (* Reads never license writes. *)
  let fs = E.check_trace m ~subsystem:"s1" ~handler:"h_rd" [ (true, "sa") ] in
  expect_only "effect-undeclared-write" fs

let test_wildcard_covers () =
  Alcotest.(check bool) "fd:* covers fd:sock" true
    (E.covers ~declared:[ E.wildcard ] "fd:sock");
  Alcotest.(check bool) "fd:* does not cover globals" false
    (E.covers ~declared:[ E.wildcard ] "netdevs")

(* ---- race-* lockset fixtures ---- *)

let test_race_unguarded () =
  (* h_rd has no lock spec at all: its lockset is empty. *)
  let lock =
    {
      Lock.classes = [ cls ~rank:10 "a" ];
      specs = [ ("s1", "h_wr", Lock.scoped ~touches:[ "sa" ] [ "a" ]) ];
    }
  in
  let fs = E.races ~lock (clean_effects ()) in
  expect_only "race-unguarded-slot" fs;
  let f = find_f "race-unguarded-slot" fs in
  Alcotest.(check string) "subject names the slot" "state slot \"sa\""
    f.E.subject

let test_race_disjoint () =
  (* Writer under a, reader under b, nothing guards "sa": disjoint. *)
  let lock =
    {
      Lock.classes = [ cls ~rank:10 "a"; cls ~rank:20 "b" ];
      specs =
        [
          ("s1", "h_wr", Lock.scoped [ "a" ]);
          ("s1", "h_rd", Lock.scoped [ "b" ]);
        ];
    }
  in
  expect_only "race-disjoint-locksets" (E.races ~lock (clean_effects ()))

let test_race_order_masked () =
  (* Disjoint locksets a vs b, but class g guards "sa" and the
     declared order graph (via h_ga/h_gb) nests g outside both: the
     race is masked by convention, Info only. *)
  let g = cls ~rank:5 ~guards:[ "sa" ] "g" in
  let lock =
    {
      Lock.classes = [ g; cls ~rank:10 "a"; cls ~rank:20 "b" ];
      specs =
        [
          ("s1", "h_wr", Lock.scoped [ "a" ]);
          ("s1", "h_rd", Lock.scoped [ "b" ]);
          ("s2", "h_ga", Lock.scoped [ "g"; "a" ]);
          ("s2", "h_gb", Lock.scoped [ "g"; "b" ]);
        ];
    }
  in
  expect_only "race-order-masked" (E.races ~lock (clean_effects ()))

let test_race_known_bug () =
  (* Registering the pair in the known-race catalog downgrades it to a
     race-known-bug Info (fixture catalog passed explicitly: the
     global registry stays untouched). *)
  let lock =
    {
      Lock.classes = [ cls ~rank:10 "a" ];
      specs = [ ("s1", "h_wr", Lock.scoped [ "a" ]) ];
    }
  in
  let known = [ { E.kslot = "sa"; parties = [ "h_wr"; "h_rd" ]; bug = "fx" } ] in
  let fs = E.races ~lock ~known (clean_effects ()) in
  expect_only "race-known-bug" fs;
  let f = find_f "race-known-bug" fs in
  Alcotest.(check bool) "names the bug" true (contains f.E.msg "\"fx\"")

(* ---- the shipped model ---- *)

(* Golden: the 20-subsystem corpus effect model is drift-clean, and
   the only race candidates are the registered fixture races. *)
let test_corpus_clean () =
  let handlers =
    List.concat_map
      (fun (sub : K.Subsystem.t) ->
        List.map
          (fun (name, _) -> (name, sub.K.Subsystem.name))
          sub.K.Subsystem.handlers)
      (K.Kernel.subsystems ())
  in
  let fs =
    E.check_model
      ~lock:(K.Kernel.lock_model ())
      ~handlers
      (K.Kernel.effect_model ())
  in
  List.iter
    (fun (f : E.finding) ->
      Alcotest.failf "corpus effect finding: %s: %s: %s" f.E.check f.E.subject
        f.E.msg)
    fs

let test_corpus_races_only_known () =
  let fs =
    E.races
      ~lock:(K.Kernel.lock_model ())
      ~known:(E.registered_races ())
      (K.Kernel.effect_model ())
  in
  List.iter
    (fun (f : E.finding) ->
      if f.E.check <> "race-known-bug" && f.E.check <> "race-order-masked" then
        Alcotest.failf "unexpected corpus race: %s: %s: %s" f.E.check
          f.E.subject f.E.msg)
    fs;
  (* Both deliberately-unguarded fixture races are visible: the
     lock-free packet stats read and the mount-busy window. *)
  List.iter
    (fun bug ->
      Alcotest.(check bool)
        (bug ^ " race flagged") true
        (List.exists
           (fun (f : E.finding) ->
             f.E.check = "race-known-bug"
             && contains f.E.msg ("\"" ^ bug ^ "\""))
           fs))
    [ "packet_seq_show"; "legitimize_mnt" ]

(* And stays clean through the Diagnostic adapter + full analysis: no
   effect drift, no race warnings — candidates surface as Info. *)
let test_corpus_clean_analysis () =
  let ds = A.run (A.of_kernel ()) in
  let effecty =
    List.filter
      (fun (d : D.t) -> String.starts_with ~prefix:"effect-" d.D.check)
      ds
  in
  Alcotest.(check int) "no effect-* diagnostics on the corpus" 0
    (List.length effecty);
  let race_warnings =
    List.filter
      (fun (d : D.t) ->
        String.starts_with ~prefix:"race-" d.D.check
        && d.D.severity <> D.Info)
      ds
  in
  Alcotest.(check int) "no race warnings on the corpus" 0
    (List.length race_warnings);
  Alcotest.(check bool) "known races surface as Info" true
    (List.exists (fun (d : D.t) -> d.D.check = "race-known-bug") ds)

let test_catalog () =
  let ids =
    List.concat_map
      (fun (p : P.t) -> List.map (fun (id, _, _) -> id) p.P.checks)
      [
        Healer_analysis.Effects.pass; Healer_analysis.Races.pass;
        Healer_analysis.Rel_infer.pass;
      ]
  in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " in catalog") true (List.mem id ids))
    [
      "effect-unknown-slot"; "effect-orphan-spec"; "effect-missing-spec";
      "effect-guard-mismatch"; "effect-undeclared-read";
      "effect-undeclared-write"; "race-unguarded-slot";
      "race-disjoint-locksets"; "race-order-masked"; "race-known-bug";
      "rel-infer-new-edge"; "rel-infer-unjustified"; "rel-infer-summary";
    ]

(* ---- relation inference fixtures ---- *)

(* Run only the inference pass on a standalone description whose
   effect model we control. *)
let infer src em =
  A.run
    ~passes:[ Healer_analysis.Rel_infer.pass ]
    { (A.of_source ~name:"fixture" src) with P.effects = Some em }

let dhas check ds = List.exists (fun (d : D.t) -> d.D.check = check) ds

let dfind check ds = List.find (fun (d : D.t) -> d.D.check = check) ds

let test_infer_new_edge () =
  (* wr and rd share slot "s" but no resource flows between them: the
     static seed misses the edge, the effect model predicts it. *)
  let src = "wr(v int32)\nrd(v int32)\n" in
  let em =
    {
      E.slots = [ "s" ];
      especs =
        [
          ("x", "wr", E.spec ~writes:[ "s" ] ());
          ("x", "rd", E.spec ~reads:[ "s" ] ());
        ];
    }
  in
  let ds = infer src em in
  Alcotest.(check bool) "new edge reported" true (dhas "rel-infer-new-edge" ds);
  let d = dfind "rel-infer-new-edge" ds in
  Alcotest.(check string) "reported per writer" "handler wr" d.D.subject;
  Alcotest.(check bool) "lists the reader and slot" true
    (contains d.D.message "rd via \"s\"")

let test_infer_unjustified () =
  (* mk creates the resource use consumes — a static edge — but their
     declared effects share no state slot. *)
  let src = "resource rr[int32]\nmk(z const[0]) rr\nuse(f rr)\n" in
  let em =
    {
      E.slots = [ "sa"; "sb" ];
      especs =
        [
          ("x", "mk", E.spec ~writes:[ "sa" ] ());
          ("x", "use", E.spec ~reads:[ "sb" ] ());
        ];
    }
  in
  let ds = infer src em in
  Alcotest.(check bool) "unjustified edge reported" true
    (dhas "rel-infer-unjustified" ds);
  let d = dfind "rel-infer-unjustified" ds in
  Alcotest.(check string) "subject names the pair" "relation mk -> use"
    d.D.subject

let test_infer_summary () =
  let ds = A.run (A.of_kernel ()) in
  let d = dfind "rel-infer-summary" ds in
  Alcotest.(check bool) "summary carries the diff counts" true
    (contains d.D.message "corroborated")

let test_predicted_edges_shape () =
  let em = clean_effects () in
  Alcotest.(check (list (triple string string string)))
    "writer -> reader via slot"
    [ ("h_wr", "h_rd", "sa") ]
    (E.predicted_edges em);
  (* Wildcard accesses predict nothing. *)
  let em' =
    {
      E.slots = [];
      especs =
        [
          ("s", "h1", E.spec ~writes:[ E.wildcard ] ());
          ("s", "h2", E.spec ~reads:[ E.wildcard ] ());
        ];
    }
  in
  Alcotest.(check int) "no wildcard edges" 0
    (List.length (E.predicted_edges em'))

(* ---- effect-count accounting hooks ---- *)

(* An open/read pair touches the vfs "fs" slot: the per-slot counters
   must land in the kernel state, and disabling the hooks must leave
   execution bit-identical with empty counters. *)
let hook_prog () =
  prog
    [
      call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
      call "read" [ r 0; buf 16; iv 16 ];
      call "close" [ r 0 ];
    ]

let test_slot_counts () =
  let kernel = boot () in
  let k', result = Exec.run kernel (hook_prog ()) in
  Alcotest.(check bool) "no crash" true (result.Exec.crash = None);
  let counts = K.Kernel.effect_counts k' in
  Alcotest.(check bool) "fs slot counted" true
    (List.exists (fun (slot, rd, wr) -> slot = "fs" && rd + wr > 0) counts)

let test_hooks_off_identical () =
  let with_hooks on =
    E.set_hooks on;
    Fun.protect
      ~finally:(fun () -> E.set_hooks true)
      (fun () -> Exec.run (boot ()) (hook_prog ()))
  in
  let k_on, r_on = with_hooks true in
  let k_off, r_off = with_hooks false in
  Alcotest.(check int) "same length" (Array.length r_on.Exec.calls)
    (Array.length r_off.Exec.calls);
  Array.iter2
    (fun (a : Exec.call_result) (b : Exec.call_result) ->
      Alcotest.(check bool) "same errno" true (a.Exec.errno = b.Exec.errno);
      Alcotest.(check bool) "same coverage" true (a.Exec.cov = b.Exec.cov))
    r_on.Exec.calls r_off.Exec.calls;
  Alcotest.(check bool) "hooks-on counted" true
    (K.Kernel.effect_counts k_on <> []);
  Alcotest.(check int) "hooks-off counted nothing" 0
    (List.length (K.Kernel.effect_counts k_off))

(* Campaign-level determinism: a short healer campaign reaches the
   same coverage/execs/corpus with the accounting hooks on and off. *)
let test_campaign_hooks_determinism () =
  let fingerprint () =
    let f =
      Fuzzer.create
        (Fuzzer.config ~seed:23 ~tool:Fuzzer.Healer ~version:K.Version.V5_11 ())
    in
    Fuzzer.run_until f 120.0;
    (Fuzzer.execs f, Fuzzer.coverage f, Corpus.size (Fuzzer.corpus f))
  in
  let on = fingerprint () in
  E.set_hooks false;
  let off = Fun.protect ~finally:(fun () -> E.set_hooks true) fingerprint in
  Alcotest.(check (triple int int int)) "bit-identical campaign" on off

(* ---- runtime validation properties ----

   main.ml arms Progcheck.set_debug true for the whole binary, which
   also arms Effect.set_validate: every Exec.run below records each
   call's observed slot accesses and raises Effect.Violation if one
   escapes the handler's declared spec. The properties assert
   observed ⊆ declared across the whole pipeline. *)

let gen_prog seed =
  let rng = Rng.create seed in
  Gen.generate rng (tgt ())
    ~select:(fun ~sub:_ -> Rng.int rng (Target.n_syscalls (tgt ())))
    ()

let test_validated_generation =
  qcheck ~count:100 "generated programs execute within declared effects"
    QCheck2.Gen.small_int (fun seed ->
      Alcotest.(check bool) "validation armed" true (E.validate_enabled ());
      ignore (run (gen_prog seed));
      true)

let test_validated_mutation =
  qcheck ~count:60 "mutated programs execute within declared effects"
    QCheck2.Gen.small_int (fun seed ->
      let rng = Rng.create (seed + 2_000_000) in
      let select ~sub:_ = Rng.int rng (Target.n_syscalls (tgt ())) in
      let p = ref (Gen.generate rng (tgt ()) ~select ()) in
      for _ = 1 to 5 do
        p := Mutate.mutate rng (tgt ()) ~select !p;
        ignore (run !p)
      done;
      true)

let test_validated_minimization =
  qcheck ~count:25 "minimized programs execute within declared effects"
    QCheck2.Gen.small_int (fun seed ->
      let p = gen_prog (seed + 13) in
      let result = run p in
      if result.Exec.crash <> None then true
      else begin
        let cov =
          Array.map (fun (c : Exec.call_result) -> c.Exec.cov) result.Exec.calls
        in
        let last = Prog.length p - 1 in
        let new_cov = Array.make (Prog.length p) [] in
        new_cov.(last) <- cov.(last);
        let pc = { Prog_cov.prog = p; cov; new_cov } in
        let exec q = snd (Exec.run (boot ()) q) in
        ignore (Minimize.minimize ~target:(tgt ()) ~exec pc);
        true
      end)

(* And the seed corpus executes violation-free. *)
let test_seed_corpus_validates () =
  Alcotest.(check bool) "validation armed" true (E.validate_enabled ());
  List.iter
    (fun p -> ignore (run p))
    (Seeds.traces (tgt ()) @ Seeds.distilled (tgt ()))

let suite =
  [
    case "clean fixture" test_clean_fixture;
    case "effect-unknown-slot" test_unknown_slot;
    case "effect-orphan-spec" test_orphan_spec;
    case "effect-missing-spec" test_missing_spec;
    case "effect-guard-mismatch" test_guard_mismatch;
    case "trace: clean + write subsumes read" test_trace_clean;
    case "effect-undeclared-read" test_undeclared_read;
    case "effect-undeclared-write" test_undeclared_write;
    case "wildcard coverage" test_wildcard_covers;
    case "race-unguarded-slot" test_race_unguarded;
    case "race-disjoint-locksets" test_race_disjoint;
    case "race-order-masked" test_race_order_masked;
    case "race-known-bug" test_race_known_bug;
    case "corpus model clean" test_corpus_clean;
    case "corpus races only known" test_corpus_races_only_known;
    case "corpus clean via analysis" test_corpus_clean_analysis;
    case "check catalog" test_catalog;
    case "rel-infer-new-edge" test_infer_new_edge;
    case "rel-infer-unjustified" test_infer_unjustified;
    case "rel-infer-summary" test_infer_summary;
    case "predicted edges shape" test_predicted_edges_shape;
    case "effect slot counts" test_slot_counts;
    case "hooks off: identical + uncounted" test_hooks_off_identical;
    case "campaign determinism vs hooks" test_campaign_hooks_determinism;
    case "seed corpus validates" test_seed_corpus_validates;
    test_validated_generation;
    test_validated_mutation;
    test_validated_minimization;
  ]
