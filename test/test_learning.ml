(* Relation table, static learning, Algorithm 1 (minimization),
   Algorithm 2 (dynamic learning), Algorithm 3 (selection), alpha. *)

module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
open Healer_core
open Helpers

let id name = (Target.find_exn (tgt ()) name).Syscall.id

(* An exec callback against a fresh 5.11 kernel per run. *)
let exec_cb () =
  let kernel = boot () in
  fun p -> snd (Exec.run kernel p)

(* ---- relation table ---- *)

let test_table_basics () =
  let t = Relation_table.create 8 in
  Alcotest.(check int) "empty" 0 (Relation_table.count t);
  Alcotest.(check bool) "set fresh" true (Relation_table.set t 1 2);
  Alcotest.(check bool) "set dup" false (Relation_table.set t 1 2);
  Alcotest.(check bool) "self ignored" false (Relation_table.set t 3 3);
  Alcotest.(check bool) "get" true (Relation_table.get t 1 2);
  Alcotest.(check bool) "asymmetric" false (Relation_table.get t 2 1);
  Alcotest.(check int) "count" 1 (Relation_table.count t);
  Alcotest.(check (list int)) "influenced_by" [ 2 ] (Relation_table.influenced_by t 1);
  Alcotest.(check (list int)) "influencers_of" [ 1 ] (Relation_table.influencers_of t 2)

let test_table_edges_merge_copy () =
  let a = Relation_table.create 6 in
  ignore (Relation_table.set a 0 1);
  ignore (Relation_table.set a 2 3);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (2, 3) ]
    (Relation_table.edges a);
  let b = Relation_table.copy a in
  ignore (Relation_table.set b 4 5);
  Alcotest.(check int) "copy isolated" 2 (Relation_table.count a);
  let c = Relation_table.create 6 in
  ignore (Relation_table.set c 0 1);
  let fresh = Relation_table.merge_into ~dst:c b in
  Alcotest.(check int) "merge fresh" 2 fresh;
  Alcotest.(check int) "merged count" 3 (Relation_table.count c)

let test_table_qcheck =
  qcheck "table get/set consistent with a reference"
    QCheck2.Gen.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let t = Relation_table.create 20 in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (a, b) ->
          if a <> b then begin
            ignore (Relation_table.set t a b);
            Hashtbl.replace reference (a, b) ()
          end)
        pairs;
      Relation_table.count t = Hashtbl.length reference
      && Hashtbl.fold (fun (a, b) () acc -> acc && Relation_table.get t a b)
           reference true)

(* ---- static learning ---- *)

let test_static_learning () =
  let table = Static_learning.initial_table (tgt ()) in
  let edge a b = Relation_table.get table (id a) (id b) in
  (* Exact-kind resource flow is captured... *)
  Alcotest.(check bool) "socket$tcp -> listen" true (edge "socket$tcp" "listen");
  Alcotest.(check bool) "kvm open -> CREATE_VM" true
    (edge "openat$kvm" "ioctl$KVM_CREATE_VM");
  Alcotest.(check bool) "CREATE_VM -> CREATE_VCPU" true
    (edge "ioctl$KVM_CREATE_VM" "ioctl$KVM_CREATE_VCPU");
  Alcotest.(check bool) "CREATE_VCPU -> RUN" true
    (edge "ioctl$KVM_CREATE_VCPU" "ioctl$KVM_RUN");
  (* ... including the netlink resource chains: the route socket feeds
     the RTM sends, and a GETFAMILY-resolved runtime id feeds the
     generic-netlink bind and send... *)
  Alcotest.(check bool) "socket$nl_route -> RTM_NEWLINK" true
    (edge "socket$nl_route" "sendmsg$RTM_NEWLINK");
  Alcotest.(check bool) "GETFAMILY -> genl send" true
    (edge "sendmsg$GETFAMILY" "sendmsg$genl");
  Alcotest.(check bool) "GETFAMILY -> genl bind" true
    (edge "sendmsg$GETFAMILY" "bind$nl_generic");
  (* ... state-only relations are not (that is dynamic learning's job,
     Figure 2)... *)
  Alcotest.(check bool) "ADD_SEALS -> mmap unknown statically" false
    (edge "fcntl$ADD_SEALS" "mmap");
  Alcotest.(check bool) "bind -> listen unknown statically" false
    (edge "bind" "listen");
  Alcotest.(check bool) "SETLINK -> sendto$packet unknown statically" false
    (edge "sendmsg$RTM_SETLINK" "sendto$packet");
  (* ... stateless long-tail calls have no relations at all. *)
  Alcotest.(check (list int)) "compat isolated" []
    (Relation_table.influenced_by table (id "prctl$PR_SET_NAME"));
  (* The graph is sparse overall (paper: sparse, locally dense). *)
  let n = Target.n_syscalls (tgt ()) in
  Alcotest.(check bool) "sparse" true
    (Relation_table.count table * 50 < n * n)

(* ---- minimization (Algorithm 1) ---- *)

let memfd_noise_prog () =
  (* [memfd_create; open(noise); write; fcntl$ADD_SEALS; mmap] — the
     paper's Figure 2 example with an unrelated open inserted. *)
  prog
    [
      call "memfd_create" [ ptr (s "memfd"); i 3L ];
      call "open" [ s "/etc/passwd"; i 0L; i 0L ];
      call "write" [ r 0; buf 64; iv 64 ];
      call "fcntl$ADD_SEALS" [ r 0; i 0x409L; i 0x8L ];
      call "mmap" [ vma; iv 4096; i 1L; i 2L; r 0; i 0L ];
    ]

let observe p =
  let exec = exec_cb () in
  let run_res = exec p in
  let cov = Array.map (fun (c : Exec.call_result) -> c.Exec.cov) run_res.Exec.calls in
  (* Pretend the last call contributed new coverage. *)
  let new_cov = Array.make (Prog.length p) [] in
  new_cov.(Prog.length p - 1) <- cov.(Prog.length p - 1);
  { Prog_cov.prog = p; cov; new_cov }

let test_minimize_drops_noise () =
  let pc = observe (memfd_noise_prog ()) in
  let minimized = Minimize.minimize ~exec:(exec_cb ()) pc in
  Alcotest.(check int) "one subsequence" 1 (List.length minimized);
  let m = (List.hd minimized).Prog_cov.prog in
  let names =
    List.init (Prog.length m) (fun k ->
        (Prog.call m k).Prog.syscall.Syscall.name)
  in
  (* The unrelated open and the write are gone; the seal-setter that
     changes mmap's path is retained. *)
  Alcotest.(check bool) "memfd kept" true (List.mem "memfd_create" names);
  Alcotest.(check bool) "seals kept" true (List.mem "fcntl$ADD_SEALS" names);
  Alcotest.(check bool) "mmap kept" true (List.mem "mmap" names);
  Alcotest.(check bool) "noise dropped" false (List.mem "open" names)

let test_minimize_preserves_target_cov () =
  let pc = observe (memfd_noise_prog ()) in
  let original_last = pc.Prog_cov.cov.(Prog_cov.length pc - 1) in
  let minimized = Minimize.minimize ~exec:(exec_cb ()) pc in
  let m = List.hd minimized in
  let last = Prog_cov.call_cov m (Prog_cov.length m - 1) in
  Alcotest.(check bool) "same final-call coverage" true
    (Exec.cov_equal original_last last)

let test_minimize_multiple_seeds () =
  (* Two independent new-coverage calls yield two subsequences. *)
  let p =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "bind" [ r 0; group [ i 2L; i 80L; i 1L ] ];
        call "listen" [ r 0; iv 8 ];
        call "openat$vcs" [ i (-100L); s "/dev/vcs"; i 0L ];
        call "read" [ r 3; buf 16; iv 16 ];
      ]
  in
  let exec = exec_cb () in
  let run_res = exec p in
  let cov = Array.map (fun (c : Exec.call_result) -> c.Exec.cov) run_res.Exec.calls in
  let new_cov = Array.make 5 [] in
  new_cov.(2) <- cov.(2);
  new_cov.(4) <- cov.(4);
  let pc = { Prog_cov.prog = p; cov; new_cov } in
  let minimized = Minimize.minimize ~exec:(exec_cb ()) pc in
  Alcotest.(check int) "two subsequences" 2 (List.length minimized);
  (* Subsequences are independent: the vcs one has no socket calls. *)
  let names m =
    List.init (Prog.length m.Prog_cov.prog) (fun k ->
        (Prog.call m.Prog_cov.prog k).Prog.syscall.Syscall.name)
  in
  let vcs_seq =
    List.find (fun m -> List.mem "read" (names m)) minimized
  in
  Alcotest.(check bool) "vcs seq drops socket calls" false
    (List.mem "listen" (names vcs_seq))

(* ---- dynamic learning (Algorithm 2) ---- *)

let test_dynamic_learns_figure2 () =
  (* The paper's running example: fcntl$ADD_SEALS -> mmap is learnable
     only dynamically. *)
  let table = Static_learning.initial_table (tgt ()) in
  let pc = observe (memfd_noise_prog ()) in
  let fresh, _minimized =
    Dynamic_learning.learn_from_run ~exec:(exec_cb ()) ~table pc
  in
  Alcotest.(check bool) "ADD_SEALS -> mmap learned" true
    (Relation_table.get table (id "fcntl$ADD_SEALS") (id "mmap"));
  Alcotest.(check bool) "reported as fresh" true
    (List.mem (id "fcntl$ADD_SEALS", id "mmap") fresh)

let test_dynamic_learns_bind_listen () =
  let table = Static_learning.initial_table (tgt ()) in
  let p =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "bind" [ r 0; group [ i 2L; i 80L; i 1L ] ];
        call "listen" [ r 0; iv 8 ];
      ]
  in
  let exec = exec_cb () in
  let run_res = exec p in
  let cov = Array.map (fun (c : Exec.call_result) -> c.Exec.cov) run_res.Exec.calls in
  let new_cov = Array.make 3 [] in
  new_cov.(2) <- cov.(2);
  let pc = { Prog_cov.prog = p; cov; new_cov } in
  ignore (Dynamic_learning.learn_from_run ~exec:(exec_cb ()) ~table pc);
  Alcotest.(check bool) "bind -> listen learned" true
    (Relation_table.get table (id "bind") (id "listen"))

let test_dynamic_learns_netlink_netdev () =
  (* Cross-subsystem influence: RTM_SETLINK brings eth0 up, which is
     what unlocks the packet-socket transmit branches. No resource
     flows between the two calls, so only Algorithm 2 can see it. *)
  let table = Static_learning.initial_table (tgt ()) in
  let setlink_up =
    group
      [
        iv 32; iv 19; i 0L; i 0L;
        (* ifinfomsg: flags IFF_UP, change mask 1. *)
        Value.Group [ i 0L; i 0L; i 0L; i 1L; i 1L ];
        (* IFLA_IFNAME "eth0" attribute. *)
        Value.Group [ Value.Group [ Value.Group [ iv 8; iv 3; s "eth0" ] ] ];
      ]
  in
  let p =
    prog
      [
        call "socket$packet" [ i 17L; i 3L; i 768L ];
        call "socket$nl_route" [ i 16L; i 3L; i 0L ];
        call "sendmsg$RTM_SETLINK" [ r 1; setlink_up; i 0L ];
        call "sendto$packet" [ r 0; buf 64; iv 64; i 0L; ptr (s "eth0") ];
      ]
  in
  let pc = observe p in
  let fresh, _ = Dynamic_learning.learn_from_run ~exec:(exec_cb ()) ~table pc in
  Alcotest.(check bool) "SETLINK -> sendto$packet learned" true
    (Relation_table.get table (id "sendmsg$RTM_SETLINK") (id "sendto$packet"));
  Alcotest.(check bool) "reported as fresh" true
    (List.mem (id "sendmsg$RTM_SETLINK", id "sendto$packet") fresh)

let test_dynamic_skips_known () =
  (* Pairs already in the table are not re-analyzed: learn on a
     sequence whose only consecutive pair is statically known. *)
  let table = Static_learning.initial_table (tgt ()) in
  let before = Relation_table.count table in
  let p =
    prog
      [
        call "socket$tcp" [ i 2L; i 1L; i 6L ];
        call "listen" [ r 0; iv 8 ];
      ]
  in
  let pc = Prog_cov.observe ~exec:(exec_cb ()) p in
  let fresh = Dynamic_learning.learn ~exec:(exec_cb ()) ~table [ pc ] in
  Alcotest.(check (list (pair int int))) "nothing new" [] fresh;
  Alcotest.(check int) "count unchanged" before (Relation_table.count table)

(* ---- selection (Algorithm 3) and alpha ---- *)

let test_select_alpha_zero_is_random () =
  let table = Relation_table.create (Target.n_syscalls (tgt ())) in
  ignore (Relation_table.set table 0 1);
  let rng = rng () in
  let used = ref false in
  for _ = 1 to 100 do
    let o = Select.select rng table ~alpha:0.0 ~sub:[ 0 ] in
    if o.Select.used_table then used := true
  done;
  Alcotest.(check bool) "never uses table at alpha 0" false !used

let test_select_follows_relations () =
  let table = Relation_table.create (Target.n_syscalls (tgt ())) in
  ignore (Relation_table.set table 5 9);
  ignore (Relation_table.set table 6 9);
  ignore (Relation_table.set table 5 7);
  let rng = rng () in
  let picks9 = ref 0 and picks7 = ref 0 and total_table = ref 0 in
  for _ = 1 to 2000 do
    let o = Select.select rng table ~alpha:1.0 ~sub:[ 5; 6 ] in
    if o.Select.used_table then begin
      incr total_table;
      if o.Select.id = 9 then incr picks9;
      if o.Select.id = 7 then incr picks7
    end
  done;
  Alcotest.(check int) "always table-guided" 2000 !total_table;
  Alcotest.(check int) "only candidates" 2000 (!picks9 + !picks7);
  (* 9 has two influencers, 7 one: expect roughly 2:1. *)
  Alcotest.(check bool) "weighting respected" true
    (!picks9 > !picks7 + 200)

let test_select_empty_candidates_fallback () =
  let table = Relation_table.create (Target.n_syscalls (tgt ())) in
  let rng = rng () in
  let o = Select.select rng table ~alpha:1.0 ~sub:[ 1; 2; 3 ] in
  Alcotest.(check bool) "fallback is random" false o.Select.used_table

let test_alpha_adaptation () =
  let a = Alpha.create ~init:0.5 ~window:128 () in
  (* Table selections keep finding coverage, random ones never do. *)
  for _ = 1 to 64 do
    Alpha.record a ~used_table:true ~new_cov:true;
    Alpha.record a ~used_table:false ~new_cov:false
  done;
  Alcotest.(check bool) "alpha rose" true (Alpha.value a > 0.6);
  Alcotest.(check int) "one update" 1 (Alpha.updates a);
  (* Now invert the payoff. *)
  let b = Alpha.create ~init:0.8 ~window:128 () in
  for _ = 1 to 64 do
    Alpha.record b ~used_table:true ~new_cov:false;
    Alpha.record b ~used_table:false ~new_cov:true
  done;
  Alcotest.(check bool) "alpha fell" true (Alpha.value b < 0.8)

let test_alpha_needs_both_arms () =
  (* With only one arm sampled, alpha must not move. *)
  let a = Alpha.create ~init:0.5 ~window:64 () in
  for _ = 1 to 64 do
    Alpha.record a ~used_table:true ~new_cov:true
  done;
  Alcotest.(check (float 1e-9)) "unchanged" 0.5 (Alpha.value a)

(* ---- feedback ---- *)

let test_feedback () =
  let fb = Feedback.create () in
  let p = memfd_noise_prog () in
  let run_res = (exec_cb ()) p in
  Alcotest.(check bool) "fresh run is interesting" true
    (Feedback.peek_new fb run_res);
  let per_call = Feedback.process fb run_res in
  Alcotest.(check bool) "interesting" true (Feedback.is_interesting per_call);
  Alcotest.(check bool) "coverage recorded" true (Feedback.coverage fb > 0);
  (* The same run again brings nothing new. *)
  let run2 = (exec_cb ()) p in
  let per_call2 = Feedback.process fb run2 in
  Alcotest.(check bool) "replay uninteresting" false
    (Feedback.is_interesting per_call2)

let suite =
  [
    case "relation table basics" test_table_basics;
    case "relation table edges/merge/copy" test_table_edges_merge_copy;
    test_table_qcheck;
    case "static learning" test_static_learning;
    case "minimize drops noise" test_minimize_drops_noise;
    case "minimize preserves coverage" test_minimize_preserves_target_cov;
    case "minimize multiple seeds" test_minimize_multiple_seeds;
    case "dynamic learns Figure 2" test_dynamic_learns_figure2;
    case "dynamic learns bind->listen" test_dynamic_learns_bind_listen;
    case "dynamic learns netlink->netdev" test_dynamic_learns_netlink_netdev;
    case "dynamic skips known pairs" test_dynamic_skips_known;
    case "select alpha=0 random" test_select_alpha_zero_is_random;
    case "select follows relations" test_select_follows_relations;
    case "select empty fallback" test_select_empty_candidates_fallback;
    case "alpha adaptation" test_alpha_adaptation;
    case "alpha needs both arms" test_alpha_needs_both_arms;
    case "feedback" test_feedback;
  ]
