(* The domain pool and the parallel campaign engine: result ordering,
   exception propagation, and the regression that matters most —
   a parallel matrix is indistinguishable from a sequential one. *)

module Domain_pool = Healer_util.Domain_pool
module K = Healer_kernel
open Healer_core
open Helpers

(* ---- Domain_pool ---- *)

let test_pool_map_order () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 (fun i -> i) in
      Alcotest.(check (list int))
        "results in input order, whatever the completion order"
        (List.map (fun i -> i * i) xs)
        (Domain_pool.map pool (fun i -> i * i) xs);
      Alcotest.(check (list int)) "empty input" [] (Domain_pool.map pool (fun i -> i) []))

let test_pool_exception_propagation () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.check_raises "earliest failing job wins" (Failure "boom 3")
        (fun () ->
          ignore
            (Domain_pool.map pool
               (fun i ->
                 if i mod 7 = 3 then failwith ("boom " ^ string_of_int i) else i)
               (List.init 20 (fun i -> i))));
      (* The pool survives a failed map. *)
      Alcotest.(check (list int)) "usable after exception" [ 2; 4 ]
        (Domain_pool.map pool (fun i -> 2 * i) [ 1; 2 ]))

let test_pool_size_one_equivalence () =
  let xs = List.init 25 (fun i -> i + 1) in
  let f i = (i * 37) mod 11 in
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int)) "size-1 pool behaves like List.map"
        (List.map f xs) (Domain_pool.map pool f xs))

let test_pool_reuse () =
  Domain_pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check int) "size" 2 (Domain_pool.size pool);
      for round = 1 to 3 do
        let xs = List.init (10 * round) (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "map round %d" round)
          (List.map (fun i -> i + round) xs)
          (Domain_pool.map pool (fun i -> i + round) xs)
      done)

let test_pool_lifecycle () =
  (match Domain_pool.create ~jobs:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 must be rejected");
  let pool = Domain_pool.create ~jobs:2 in
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* idempotent *)
  match Domain_pool.map pool (fun i -> i) [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "map after shutdown must be rejected"

(* ---- parallel campaign matrix determinism ---- *)

let crash_view (r : Campaign.run) =
  List.map
    (fun (c : Triage.record) ->
      (c.Triage.bug_key, c.Triage.first_found, c.Triage.repro_len))
    r.Campaign.crashes

let check_run_equal label (a : Campaign.run) (b : Campaign.run) =
  Alcotest.(check int) (label ^ ": coverage") a.Campaign.final_cov b.Campaign.final_cov;
  Alcotest.(check int) (label ^ ": execs") a.Campaign.execs b.Campaign.execs;
  Alcotest.(check (list (pair (float 0.0) int)))
    (label ^ ": samples") a.Campaign.samples b.Campaign.samples;
  Alcotest.(check int) (label ^ ": corpus size") a.Campaign.corpus_size
    b.Campaign.corpus_size;
  Alcotest.(check (list int))
    (label ^ ": corpus lengths") a.Campaign.corpus_lengths b.Campaign.corpus_lengths;
  Alcotest.(check int) (label ^ ": relations") a.Campaign.relations b.Campaign.relations;
  Alcotest.(check (list (triple string (float 0.0) int)))
    (label ^ ": crashes") (crash_view a) (crash_view b);
  Alcotest.(check int)
    (label ^ ": snapshots")
    (List.length a.Campaign.relation_snapshots)
    (List.length b.Campaign.relation_snapshots)

let test_run_matrix_deterministic () =
  let h = 0.05 in
  let specs =
    [
      (Fuzzer.Healer, K.Version.V5_11, 1, h);
      (Fuzzer.Healer, K.Version.V5_11, 2, h);
      (Fuzzer.Syzkaller, K.Version.V5_11, 1, h);
      (Fuzzer.Moonshine, K.Version.V4_19, 1, h);
      (Fuzzer.Healer_minus, K.Version.V5_4, 1, h);
    ]
  in
  let sequential = Campaign.run_matrix ~jobs:1 specs in
  let parallel = Campaign.run_matrix ~jobs:3 specs in
  Alcotest.(check int) "same cardinality" (List.length sequential)
    (List.length parallel);
  List.iteri
    (fun i ((tool, version, seed, _), (s, p)) ->
      let label =
        Printf.sprintf "%s/%s/%d" (Fuzzer.tool_name tool)
          (K.Version.to_string version) seed
      in
      (* Results come back in input order... *)
      Alcotest.(check string)
        (Printf.sprintf "spec %d tool" i)
        (Fuzzer.tool_name tool)
        (Fuzzer.tool_name s.Campaign.tool);
      Alcotest.(check string)
        (Printf.sprintf "spec %d tool (parallel)" i)
        (Fuzzer.tool_name tool)
        (Fuzzer.tool_name p.Campaign.tool);
      (* ...and every observable statistic matches the sequential run. *)
      check_run_equal label s p)
    (List.combine specs (List.combine sequential parallel))

let test_compare_tools_parallel () =
  let seq =
    Campaign.compare_tools ~jobs:1 ~hours:0.05 ~rounds:2 ~subject:Fuzzer.Healer
      ~base:Fuzzer.Syzkaller K.Version.V5_11
  in
  let par =
    Campaign.compare_tools ~jobs:2 ~hours:0.05 ~rounds:2 ~subject:Fuzzer.Healer
      ~base:Fuzzer.Syzkaller K.Version.V5_11
  in
  Alcotest.(check (float 0.0)) "avg improvement" seq.Campaign.avg_impr
    par.Campaign.avg_impr;
  Alcotest.(check (float 0.0)) "min improvement" seq.Campaign.min_impr
    par.Campaign.min_impr;
  Alcotest.(check (float 0.0)) "max improvement" seq.Campaign.max_impr
    par.Campaign.max_impr

let suite =
  [
    case "pool map keeps input order" test_pool_map_order;
    case "pool propagates exceptions" test_pool_exception_propagation;
    case "pool size 1 equals List.map" test_pool_size_one_equivalence;
    case "pool reuse across maps" test_pool_reuse;
    case "pool lifecycle errors" test_pool_lifecycle;
    case "run_matrix parallel == sequential" test_run_matrix_deterministic;
    case "compare_tools parallel == sequential" test_compare_tools_parallel;
  ]
