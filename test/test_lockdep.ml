(* The lock model and lockdep: one hand-broken fixture per lock-*
   check ID, golden "the shipped 20-subsystem corpus is lockdep-clean"
   tests, runtime-trace validation, lock-pair coverage accounting, and
   property suites asserting the gen/mutate/minimize pipeline never
   trips the runtime validator (armed suite-wide by main.ml via
   [Progcheck.set_debug true]). *)

module Lock = Healer_kernel.Lock
module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Target = Healer_syzlang.Target
module Rng = Healer_util.Rng
module D = Healer_util.Diagnostic
module K = Healer_kernel
open Healer_core
open Helpers

(* ---- fixture models (built with [Lock.make]: nothing below touches
   the process-global class registry) ---- *)

let cls ?guards ~rank name = Lock.make ?guards ~rank name

let model classes specs = { Lock.classes; specs }

let spec ?touches classes = Lock.scoped ?touches classes

let has id fs = List.exists (fun (f : Lock.finding) -> f.Lock.check = id) fs

let find_f id fs = List.find (fun (f : Lock.finding) -> f.Lock.check = id) fs

(* The broken fixtures are minimal, so a perturbation can have honest
   follow-on findings (an acquire-less class is also unused; the
   release bracketing a skipped double-acquire is itself unheld) —
   [allow] lists those, anything else is a test failure. *)
let expect_only ?(allow = []) id fs =
  Alcotest.(check bool) (id ^ " reported") true (has id fs);
  List.iter
    (fun (f : Lock.finding) ->
      if not (List.mem f.Lock.check (id :: allow)) then
        Alcotest.failf "unexpected check %s (%s)" f.Lock.check f.Lock.msg)
    fs

(* A two-class baseline every broken fixture perturbs: a (rank 10)
   nests b (rank 20), one handler under each, one nesting both. *)
let a () = cls ~rank:10 ~guards:[ "sa" ] "a"
let b () = cls ~rank:20 ~guards:[ "sb" ] "b"

let clean_model () =
  model
    [ a (); b () ]
    [
      ("s1", "h_a", spec ~touches:[ "sa" ] [ "a" ]);
      ("s1", "h_b", spec ~touches:[ "sb" ] [ "b" ]);
      ("s2", "h_ab", spec [ "a"; "b" ]);
    ]

let test_clean_fixture () =
  Alcotest.(check int) "clean model has no findings" 0
    (List.length (Lock.check_model (clean_model ())))

let test_unknown_class () =
  let m = model [ a () ] [ ("s", "h", spec [ "ghost" ]) ] in
  expect_only ~allow:[ "lock-unused-class" ] "lock-unknown-class"
    (Lock.check_model m)

let test_double_acquire () =
  let m = model [ a () ] [ ("s", "h", spec [ "a"; "a" ]) ] in
  (* The skipped inner re-acquire leaves its bracketed release with
     nothing to pop, so a follow-on release-unheld is expected. *)
  expect_only ~allow:[ "lock-release-unheld" ] "lock-double-acquire"
    (Lock.check_model m)

let test_release_unheld () =
  let m =
    model [ a () ]
      [ ("s", "h", { Lock.ops = [ Lock.Release "a" ]; touches = [] }) ]
  in
  expect_only ~allow:[ "lock-unused-class" ] "lock-release-unheld"
    (Lock.check_model m)

let test_held_at_exit () =
  let m =
    model [ a () ]
      [ ("s", "h", { Lock.ops = [ Lock.Acquire "a" ]; touches = [] }) ]
  in
  expect_only "lock-held-at-exit" (Lock.check_model m)

let test_rank_violation () =
  let m =
    model [ a (); b () ]
      [ ("s", "h", spec [ "b"; "a" ]) (* b (20) held while taking a (10) *) ]
  in
  Alcotest.(check bool) "rank violation reported" true
    (has "lock-rank-violation" (Lock.check_model m))

let test_order_cycle () =
  (* Equal ranks make both nestings rank-legal; together they close an
     ABBA cycle. *)
  let a = cls ~rank:10 "a" and b = cls ~rank:10 "b" in
  let m =
    model [ a; b ]
      [ ("s1", "h_ab", spec [ "a"; "b" ]); ("s2", "h_ba", spec [ "b"; "a" ]) ]
  in
  let fs = Lock.check_model m in
  Alcotest.(check bool) "cycle reported" true (has "lock-order-cycle" fs);
  Alcotest.(check int) "one report per cycle" 1
    (List.length
       (List.filter (fun (f : Lock.finding) -> f.Lock.check = "lock-order-cycle") fs))

let test_guard_coverage_unguarded () =
  let m =
    model [ a () ]
      [
        ("s1", "h1", spec ~touches:[ "sa" ] [ "a" ]);
        ("s2", "h2", spec ~touches:[ "sa" ] []) (* mutates sa lockless *);
      ]
  in
  let fs = Lock.check_model m in
  Alcotest.(check bool) "guard coverage reported" true
    (has "lock-guard-coverage" fs);
  let f = find_f "lock-guard-coverage" fs in
  Alcotest.(check string) "subject names the slot" "state slot \"sa\""
    f.Lock.subject

(* The in-tree true positive, reduced: annotating the netlink RTM
   handlers with a netlink-local class instead of sharing rtnl leaves
   "netdevs" mutated under disjoint classes. *)
let test_guard_coverage_disjoint () =
  let rtnl = cls ~rank:10 ~guards:[ "netdevs" ] "rtnl" in
  let nl = cls ~rank:15 ~guards:[ "netdevs" ] "nl_table" in
  let m =
    model [ rtnl; nl ]
      [
        ("netdev", "ioctl$ifup", spec ~touches:[ "netdevs" ] [ "rtnl" ]);
        ("netlink", "sendmsg$RTM_NEWLINK", spec ~touches:[ "netdevs" ] [ "nl_table" ]);
      ]
  in
  let fs = Lock.check_model m in
  Alcotest.(check bool) "disjoint classes reported" true
    (has "lock-guard-coverage" fs);
  let f = find_f "lock-guard-coverage" fs in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "message says disjoint" true
    (contains f.Lock.msg "disjoint")

(* Read-side coverage: a guarded slot read while holding no guarding
   class warns too (the [?reads] extension feeding off effect specs).
   Unguarded slots stay the race detector's domain — no class guards
   them, so there is nothing to hold. *)
let test_guard_coverage_read () =
  let m =
    model [ a () ]
      [
        ("s1", "h1", spec ~touches:[ "sa" ] [ "a" ]);
        ("s2", "h2", spec [] (* lock-free reader *));
      ]
  in
  let fs = Lock.check_model ~reads:[ ("s2", "h2", [ "sa" ]) ] m in
  Alcotest.(check bool) "read coverage reported" true
    (has "lock-guard-coverage" fs);
  let f = find_f "lock-guard-coverage" fs in
  Alcotest.(check string) "subject names the slot" "state slot \"sa\""
    f.Lock.subject;
  (* A reader holding the guarding class is clean... *)
  let held =
    model [ a () ]
      [
        ("s1", "h1", spec ~touches:[ "sa" ] [ "a" ]);
        ("s2", "h2", spec [ "a" ]);
      ]
  in
  Alcotest.(check int) "guarded read clean" 0
    (List.length (Lock.check_model ~reads:[ ("s2", "h2", [ "sa" ]) ] held));
  (* ... and so is reading a slot no class guards at all. *)
  let m' = model [ a () ] [ ("s1", "h1", spec [ "a" ]) ] in
  Alcotest.(check int) "unguarded slot ignored" 0
    (List.length (Lock.check_model ~reads:[ ("s2", "h2", [ "sx" ]) ] m'))

let test_unused_class () =
  let m = model [ a (); b () ] [ ("s", "h", spec [ "a" ]) ] in
  let fs = Lock.check_model m in
  Alcotest.(check bool) "unused class reported" true (has "lock-unused-class" fs);
  let f = find_f "lock-unused-class" fs in
  Alcotest.(check string) "names the unused class" "lock class \"b\""
    f.Lock.subject

(* ---- runtime trace validation (check_trace) ---- *)

let test_trace_clean () =
  let m = clean_model () in
  Alcotest.(check int) "declared trace validates" 0
    (List.length
       (Lock.check_trace m ~subsystem:"s2" ~handler:"h_ab"
          [ Lock.Acquire "a"; Lock.Acquire "b"; Lock.Release "b"; Lock.Release "a" ]))

let test_trace_spec_mismatch () =
  let m = clean_model () in
  (* h_a declares [a]; acquiring b is not a subsequence of that. *)
  let fs =
    Lock.check_trace m ~subsystem:"s1" ~handler:"h_a"
      [ Lock.Acquire "b"; Lock.Release "b" ]
  in
  Alcotest.(check bool) "spec mismatch reported" true
    (has "lock-spec-mismatch" fs);
  (* A handler with no spec must not acquire anything. *)
  let fs =
    Lock.check_trace m ~subsystem:"s9" ~handler:"h_nospec"
      [ Lock.Acquire "a"; Lock.Release "a" ]
  in
  Alcotest.(check bool) "no-spec acquisition reported" true
    (has "lock-spec-mismatch" fs)

let test_trace_order_inversion () =
  (* Equal ranks; the declared graph has a->b, the runtime trace nests
     b->a: a would-be ABBA only visible at runtime. *)
  let a = cls ~rank:10 "a" and b = cls ~rank:10 "b" in
  let m =
    model [ a; b ]
      [
        ("s1", "h_ab", spec [ "a"; "b" ]);
        ("s2", "h_free", spec [ "b"; "a" ] (* what it may acquire *));
      ]
  in
  let fs =
    Lock.check_trace m ~subsystem:"s2" ~handler:"h_free"
      [ Lock.Acquire "b"; Lock.Acquire "a"; Lock.Release "a"; Lock.Release "b" ]
  in
  Alcotest.(check bool) "runtime inversion reported" true
    (has "lock-order-cycle" fs)

(* ---- the shipped model ---- *)

(* Golden: the 20-subsystem corpus model is lockdep-clean. *)
let test_corpus_clean () =
  let fs = Lock.check_model (K.Kernel.lock_model ()) in
  List.iter
    (fun (f : Lock.finding) ->
      Alcotest.failf "corpus lockdep finding: %s: %s: %s" f.Lock.check
        f.Lock.subject f.Lock.msg)
    fs

(* And stays clean through the Diagnostic adapter + full analysis. *)
let test_corpus_clean_analysis () =
  let ds = Healer_analysis.Analysis.(run (of_kernel ())) in
  let locky =
    List.filter (fun (d : D.t) -> String.starts_with ~prefix:"lock-" d.D.check) ds
  in
  Alcotest.(check int) "no lock-* diagnostics on the corpus" 0
    (List.length locky)

let test_catalog () =
  let ids = List.map (fun (id, _, _) -> id) Healer_analysis.Lockdep.checks in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " in catalog") true (List.mem id ids))
    [
      "lock-unknown-class"; "lock-double-acquire"; "lock-release-unheld";
      "lock-held-at-exit"; "lock-rank-violation"; "lock-order-cycle";
      "lock-guard-coverage"; "lock-spec-mismatch"; "lock-unused-class";
    ];
  Alcotest.(check bool) "at least 9 checks" true (List.length ids >= 9)

let test_registered_classes () =
  let names = List.map (fun (c : Lock.cls) -> c.Lock.cname) (Lock.registered ()) in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "rtnl"; "genl_mutex"; "vfs_files"; "ep_mutex"; "namespace_sem";
      "ipc_ids"; "sk_lock"; "memfd_seals"; "uring_ctx"; "nl_sock";
    ]

(* ---- lock-pair coverage accounting ---- *)

(* An rtnetlink exchange acquires nl_sock under rtnl: the pair counter
   and both acquisition counters must land in the kernel state. *)
let test_pair_counts () =
  let p =
    prog
      [
        call "socket$nl_route" [ i 16L; i 3L; i 0L ];
        call "sendmsg$RTM_GETLINK"
          [
            r 0;
            group
              [
                iv 32; iv 18; iv 0x300; i 0L;
                Value.Group [ i 0L; i 0L; iv 0; iv 0; iv 0 ];
                Value.Group [];
              ];
            i 0L;
          ];
      ]
  in
  let kernel = boot () in
  let k', result = Exec.run kernel p in
  Alcotest.(check bool) "no crash" true (result.Exec.crash = None);
  let pairs = K.Kernel.lock_pair_counts k' in
  Alcotest.(check bool) "rtnl->nl_sock pair observed" true
    (List.exists (fun ((o, i), n) -> o = "rtnl" && i = "nl_sock" && n > 0) pairs);
  let acqs = K.Kernel.lock_acquire_counts k' in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " acquired") true
        (List.exists (fun (c', n) -> c' = c && n > 0) acqs))
    [ "rtnl"; "nl_sock" ]

(* Hooks off: executions are bit-identical, counters stay empty. *)
let test_hooks_off_identical () =
  let p =
    prog
      [
        call "open" [ s "/tmp/f1"; i 0x40L; i 0x1ffL ];
        call "read" [ r 0; buf 16; iv 16 ];
        call "close" [ r 0 ];
      ]
  in
  let with_hooks on =
    Lock.set_hooks on;
    Fun.protect
      ~finally:(fun () -> Lock.set_hooks true)
      (fun () -> Exec.run (boot ()) p)
  in
  let k_on, r_on = with_hooks true in
  let k_off, r_off = with_hooks false in
  Alcotest.(check int) "same length" (Array.length r_on.Exec.calls)
    (Array.length r_off.Exec.calls);
  Array.iter2
    (fun (a : Exec.call_result) (b : Exec.call_result) ->
      Alcotest.(check bool) "same errno" true (a.Exec.errno = b.Exec.errno);
      Alcotest.(check bool) "same coverage" true (a.Exec.cov = b.Exec.cov))
    r_on.Exec.calls r_off.Exec.calls;
  Alcotest.(check bool) "hooks-on counted" true
    (K.Kernel.lock_acquire_counts k_on <> []);
  Alcotest.(check int) "hooks-off counted nothing" 0
    (List.length (K.Kernel.lock_pair_counts k_off)
    + List.length (K.Kernel.lock_acquire_counts k_off))

(* Campaign-level determinism: a short healer campaign reaches the
   same coverage/execs/corpus with the accounting hooks on and off. *)
let test_campaign_hooks_determinism () =
  let fingerprint () =
    let f =
      Fuzzer.create (Fuzzer.config ~seed:11 ~tool:Fuzzer.Healer ~version:K.Version.V5_11 ())
    in
    Fuzzer.run_until f 120.0;
    (Fuzzer.execs f, Fuzzer.coverage f, Corpus.size (Fuzzer.corpus f))
  in
  let on = fingerprint () in
  Lock.set_hooks false;
  let off =
    Fun.protect ~finally:(fun () -> Lock.set_hooks true) fingerprint
  in
  Alcotest.(check (triple int int int)) "bit-identical campaign" on off

(* ---- runtime validation properties ----

   main.ml arms Progcheck.set_debug true for the whole binary, which
   also arms Lock.set_validate: every Exec.run below re-validates each
   executed call's acquisition trace against the declared model and
   raises Lock.Violation on divergence. The properties assert the
   pipeline never trips it. *)

let gen_prog seed =
  let rng = Rng.create seed in
  Gen.generate rng (tgt ())
    ~select:(fun ~sub:_ -> Rng.int rng (Target.n_syscalls (tgt ())))
    ()

let test_validated_generation =
  qcheck ~count:100 "generated programs execute without lock violations"
    QCheck2.Gen.small_int (fun seed ->
      Alcotest.(check bool) "validation armed" true (Lock.validate_enabled ());
      ignore (run (gen_prog seed));
      true)

let test_validated_mutation =
  qcheck ~count:60 "mutated programs execute without lock violations"
    QCheck2.Gen.small_int (fun seed ->
      let rng = Rng.create (seed + 1_000_000) in
      let select ~sub:_ = Rng.int rng (Target.n_syscalls (tgt ())) in
      let p = ref (Gen.generate rng (tgt ()) ~select ()) in
      for _ = 1 to 5 do
        p := Mutate.mutate rng (tgt ()) ~select !p;
        ignore (run !p)
      done;
      true)

let test_validated_minimization =
  qcheck ~count:25 "minimized programs execute without lock violations"
    QCheck2.Gen.small_int (fun seed ->
      let p = gen_prog (seed + 7) in
      let result = run p in
      if result.Exec.crash <> None then true
      else begin
        let cov =
          Array.map (fun (c : Exec.call_result) -> c.Exec.cov) result.Exec.calls
        in
        let last = Prog.length p - 1 in
        let new_cov = Array.make (Prog.length p) [] in
        new_cov.(last) <- cov.(last);
        let pc = { Prog_cov.prog = p; cov; new_cov } in
        let exec q = snd (Exec.run (boot ()) q) in
        ignore (Minimize.minimize ~target:(tgt ()) ~exec pc);
        true
      end)

(* And the seed corpus executes violation-free, with validation
   explicitly (re-)armed in case the suite's global flag changes. *)
let test_seed_corpus_validates () =
  Alcotest.(check bool) "validation armed" true (Lock.validate_enabled ());
  List.iter
    (fun p -> ignore (run p))
    (Seeds.traces (tgt ()) @ Seeds.distilled (tgt ()))

(* A spec that lies about its handler is caught at runtime: drive a
   locked handler while its declared spec is absent from the model
   under test via check_trace (the same code path exec_call uses). *)
let test_runtime_catches_drift () =
  let m = clean_model () in
  let trace =
    [ Lock.Acquire "a"; Lock.Acquire "b"; Lock.Release "b"; Lock.Release "a" ]
  in
  (* h_b declares [b] only: the full a;b trace must be flagged. *)
  let fs = Lock.check_trace m ~subsystem:"s1" ~handler:"h_b" trace in
  Alcotest.(check bool) "drifted trace flagged" true
    (has "lock-spec-mismatch" fs)

let suite =
  [
    case "clean fixture" test_clean_fixture;
    case "lock-unknown-class" test_unknown_class;
    case "lock-double-acquire" test_double_acquire;
    case "lock-release-unheld" test_release_unheld;
    case "lock-held-at-exit" test_held_at_exit;
    case "lock-rank-violation" test_rank_violation;
    case "lock-order-cycle" test_order_cycle;
    case "lock-guard-coverage (unguarded)" test_guard_coverage_unguarded;
    case "lock-guard-coverage (disjoint)" test_guard_coverage_disjoint;
    case "lock-guard-coverage (read side)" test_guard_coverage_read;
    case "lock-unused-class" test_unused_class;
    case "trace: clean" test_trace_clean;
    case "lock-spec-mismatch" test_trace_spec_mismatch;
    case "trace: order inversion" test_trace_order_inversion;
    case "corpus model clean" test_corpus_clean;
    case "corpus clean via analysis" test_corpus_clean_analysis;
    case "check catalog" test_catalog;
    case "registered classes" test_registered_classes;
    case "lock-pair coverage counts" test_pair_counts;
    case "hooks off: identical + uncounted" test_hooks_off_identical;
    case "campaign determinism vs hooks" test_campaign_hooks_determinism;
    case "seed corpus validates" test_seed_corpus_validates;
    case "runtime catches spec drift" test_runtime_catches_drift;
    test_validated_generation;
    test_validated_mutation;
    test_validated_minimization;
  ]
