(* The whole suite runs with program validation enforced: any stage
   that emits a validator-dirty program fails loudly (the
   HEALER_DEBUG_VALIDATE contract). *)
let () = Healer_executor.Progcheck.set_debug true

let () =
  Alcotest.run "healer"
    [
      ("util", Test_util.suite);
      ("syzlang", Test_syzlang.suite);
      ("analysis", Test_analysis.suite);
      ("cheader", Test_cheader.suite);
      ("executor", Test_executor.suite);
      ("exec-cache", Test_exec_cache.suite);
      ("compiled", Test_compiled.suite);
      ("bugs", Test_bugs.suite);
      ("kernel-core", Test_kernel_core.suite);
      ("kernel-vfs", Test_kernel_vfs.suite);
      ("kernel-sock", Test_kernel_sock.suite);
      ("kernel-kvm-tty", Test_kernel_kvm_tty.suite);
      ("kernel-misc", Test_kernel_misc.suite);
      ("kernel-ipc", Test_kernel_ipc.suite);
      ("kernel-ext", Test_kernel_ext.suite);
      ("kernel-bpf-inotify", Test_kernel_bpf.suite);
      ("kernel-netlink", Test_kernel_netlink.suite);
      ("learning", Test_learning.suite);
      ("genmut", Test_genmut.suite);
      ("baselines", Test_baselines.suite);
      ("triage-fuzzer", Test_triage_fuzzer.suite);
      ("progcheck", Test_progcheck.suite);
      ("persist", Test_persist.suite);
      (* The service suite forks worker processes; OCaml 5 forbids
         Unix.fork once any other domain has been spawned, so it must
         run before the domain-spawning "parallel" suite. *)
      ("service", Test_service.suite);
      ("parallel", Test_parallel.suite);
      ("properties", Test_properties.suite);
      ("lockdep", Test_lockdep.suite);
      ("effects", Test_effects.suite);
    ]
