(* Netlink subsystem: rtnetlink link/addr/qdisc management, generic
   netlink family resolution, and the cross-subsystem influence on the
   netdev device table. *)

module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
module K = Healer_kernel
module Exec = Healer_executor.Exec
module Value = Healer_executor.Value
open Healer_core
open Helpers

(* ---- message builders (mirroring the syzlang layouts) ---- *)

let ifi ?(idx = 0) ?(flags = 0) ?(change = 0) () =
  Value.Group [ i 0L; i 0L; iv idx; iv flags; iv change ]

let ifa ?(plen = 24) ?(idx = 0) () =
  Value.Group [ i 0L; iv plen; i 0L; i 0L; iv idx ]

let tcm ?(idx = 0) ?(parent = 0) () =
  Value.Group [ i 0L; iv idx; i 0L; iv parent ]

(* One rt_attr array element: union wrapper around the struct fields. *)
let attr fields = Value.Group [ Value.Group fields ]
let attrs l = Value.Group (List.map attr l)
let ifname_attr name = [ iv (String.length name + 4); iv 3; s name ]
let kind_attr ?alen k =
  let alen = Option.value ~default:(String.length k + 4) alen in
  [ iv alen; iv 1; s k ]
let qlimit_attr limit = [ iv 8; iv 2; iv limit ]
let addr_attr a = [ iv 12; iv 6; i a ]

let rtmsg ~mtype ?(mflags = 0) ?(body = ifi ()) ?(atts = []) () =
  group [ iv 32; iv mtype; iv mflags; i 0L; body; attrs atts ]

let getfamily_msg name = group [ iv 32; iv 3; iv 2; s name ]
let genl_msg ?(cmd = 1) () = group [ iv 32; iv cmd; iv 1; Value.Group [] ]

let nl_route () = call "socket$nl_route" [ i 16L; i 3L; i 0L ]
let nl_generic () = call "socket$nl_generic" [ i 16L; i 3L; i 16L ]

let newlink fd ?(mflags = 0x400) atts =
  call "sendmsg$RTM_NEWLINK" [ r fd; rtmsg ~mtype:16 ~mflags ~atts (); i 0L ]

let setlink fd ~up name =
  call "sendmsg$RTM_SETLINK"
    [
      r fd;
      rtmsg ~mtype:19
        ~body:(ifi ~flags:(if up then 1 else 0) ~change:1 ())
        ~atts:[ ifname_attr name ] ();
      i 0L;
    ]

(* ---- registration shape ---- *)

let test_shape () =
  let netlink_calls =
    Array.to_list (Target.syscalls (tgt ()))
    |> List.filter (fun sc ->
           K.Kernel.subsystem_of sc.Syscall.name = "netlink")
  in
  Alcotest.(check int) "16 netlink interfaces" 16 (List.length netlink_calls);
  Alcotest.(check string) "RTM_NEWLINK belongs to netlink" "netlink"
    (K.Kernel.subsystem_of "sendmsg$RTM_NEWLINK")

(* ---- rtnetlink link lifecycle ---- *)

let test_link_lifecycle () =
  let result =
    run
      (prog
         [
           nl_route ();
           newlink 0 [ ifname_attr "dummy0" ];
           newlink 0 ~mflags:0xc00 [ ifname_attr "dummy0" ];
           newlink 0 ~mflags:0 [ ifname_attr "dummy0" ];
           newlink 0 ~mflags:0 [ ifname_attr "nosuchdev" ];
           call "sendmsg$RTM_DELLINK"
             [ r 0; rtmsg ~mtype:17 ~atts:[ ifname_attr "dummy0" ] (); i 0L ];
           call "sendmsg$RTM_DELLINK"
             [ r 0; rtmsg ~mtype:17 ~atts:[ ifname_attr "dummy0" ] (); i 0L ];
           call "sendmsg$RTM_DELLINK"
             [ r 0; rtmsg ~mtype:17 ~atts:[ ifname_attr "lo" ] (); i 0L ];
         ])
  in
  check_ok "create dummy0" result.Exec.calls.(1);
  check_errno "excl re-create" (Some K.Errno.EEXIST) result.Exec.calls.(2);
  check_ok "modify in place" result.Exec.calls.(3);
  check_errno "modify missing" (Some K.Errno.ENODEV) result.Exec.calls.(4);
  check_ok "delete" result.Exec.calls.(5);
  check_errno "delete again" (Some K.Errno.ENODEV) result.Exec.calls.(6);
  check_errno "lo is protected" (Some K.Errno.EPERM) result.Exec.calls.(7);
  check_crash "no crash" None result

let test_link_kinds () =
  let result =
    run
      (prog
         [
           nl_route ();
           newlink 0 [ ifname_attr "vlan0"; kind_attr "vlan" ];
           newlink 0 [ ifname_attr "bridge0"; kind_attr "bridge" ];
           newlink 0 [ ifname_attr "wg0"; kind_attr "wireguard" ];
           newlink 0 [];
         ])
  in
  check_ok "vlan kind" result.Exec.calls.(1);
  check_ok "bridge kind" result.Exec.calls.(2);
  check_errno "unknown kind" (Some K.Errno.EOPNOTSUPP) result.Exec.calls.(3);
  check_errno "no ifname" (Some K.Errno.EINVAL) result.Exec.calls.(4)

let test_msg_validation () =
  let result =
    run
      (prog
         [
           nl_route ();
           (* Wrong message type for the NEWLINK endpoint. *)
           call "sendmsg$RTM_NEWLINK" [ r 0; rtmsg ~mtype:17 (); i 0L ];
           (* Header shorter than nlmsghdr. *)
           call "sendmsg$RTM_NEWLINK"
             [ r 0; group [ iv 8; iv 16; i 0L; i 0L; ifi (); attrs [] ]; i 0L ];
           (* Route message on a generic socket. *)
           nl_generic ();
           call "sendmsg$RTM_NEWLINK" [ r 3; rtmsg ~mtype:16 (); i 0L ];
           (* Stale fd. *)
           call "sendmsg$RTM_NEWLINK" [ i 99L; rtmsg ~mtype:16 (); i 0L ];
         ])
  in
  check_errno "type mismatch" (Some K.Errno.EOPNOTSUPP) result.Exec.calls.(1);
  check_errno "short header" (Some K.Errno.EINVAL) result.Exec.calls.(2);
  check_errno "wrong proto" (Some K.Errno.EOPNOTSUPP) result.Exec.calls.(4);
  check_errno "bad fd" (Some K.Errno.EBADF) result.Exec.calls.(5)

(* ---- cross-subsystem: rtnetlink drives the netdev device table ---- *)

let test_setlink_gates_xmit () =
  let sendto k = call "sendto$packet" [ r k; buf 64; iv 64; i 0L; ptr (s "eth0") ] in
  let result =
    run
      (prog
         [
           call "socket$packet" [ i 17L; i 3L; i 768L ];
           sendto 0;
           nl_route ();
           setlink 2 ~up:true "eth0";
           sendto 0;
           setlink 2 ~up:false "eth0";
           sendto 0;
         ])
  in
  check_errno "down device rejects xmit" (Some K.Errno.ENODEV)
    result.Exec.calls.(1);
  check_ok "RTM_SETLINK up" result.Exec.calls.(3);
  check_ok "xmit after netlink up" result.Exec.calls.(4);
  Alcotest.(check int64) "full frame sent" 64L result.Exec.calls.(4).Exec.retval;
  check_errno "xmit after netlink down" (Some K.Errno.ENODEV)
    result.Exec.calls.(6)

let test_newqdisc_arms_netdev_bug () =
  (* Netlink-installed zero-limit qdisc trips netdev's size-table OOB. *)
  let p =
    prog
      [
        nl_route ();
        setlink 0 ~up:true "eth0";
        call "sendmsg$RTM_NEWQDISC"
          [ r 0; rtmsg ~mtype:36 ~body:(tcm ()) ~atts:[ qlimit_attr 0 ] (); i 0L ];
        call "socket$packet" [ i 17L; i 3L; i 768L ];
        call "sendto$packet" [ r 3; buf 3000; iv 3000; i 0L; ptr (s "eth0") ];
      ]
  in
  check_crash "qdisc armed over netlink" (Some "qdisc_calculate_pkt_len")
    (run ~version:K.Version.V5_11 p);
  check_crash "nonzero limit is safe" None
    (run ~version:K.Version.V5_11
       (prog
          [
            nl_route ();
            setlink 0 ~up:true "eth0";
            call "sendmsg$RTM_NEWQDISC"
              [ r 0; rtmsg ~mtype:36 ~body:(tcm ()) ~atts:[ qlimit_attr 64 ] (); i 0L ];
            call "socket$packet" [ i 17L; i 3L; i 768L ];
            call "sendto$packet" [ r 3; buf 3000; iv 3000; i 0L; ptr (s "eth0") ];
          ]))

(* ---- addresses ---- *)

let test_addresses () =
  let newaddr atts =
    call "sendmsg$RTM_NEWADDR"
      [ r 0; rtmsg ~mtype:20 ~body:(ifa ()) ~atts (); i 0L ]
  in
  let getaddr idx =
    call "sendmsg$RTM_GETADDR"
      [ r 0; rtmsg ~mtype:22 ~body:(ifa ~idx ()) (); i 0L ]
  in
  let result =
    run
      (prog
         [
           nl_route ();
           newaddr [ ifname_attr "eth0"; addr_attr 0x0a000001L ];
           newaddr [ ifname_attr "eth0"; addr_attr 0x0a000001L ];
           newaddr [ ifname_attr "eth0"; addr_attr 0x0a000002L ];
           newaddr [ ifname_attr "eth0" ];
           newaddr [ ifname_attr "nosuchdev"; addr_attr 1L ];
           getaddr 0;
           getaddr 1;
         ])
  in
  check_ok "first addr" result.Exec.calls.(1);
  check_errno "duplicate addr" (Some K.Errno.EEXIST) result.Exec.calls.(2);
  check_ok "second addr" result.Exec.calls.(3);
  check_errno "missing addr attr" (Some K.Errno.EINVAL) result.Exec.calls.(4);
  check_errno "unknown device" (Some K.Errno.ENODEV) result.Exec.calls.(5);
  Alcotest.(check int64) "eth0 has two addrs" 2L
    result.Exec.calls.(6).Exec.retval;
  Alcotest.(check int64) "lo has none" 0L result.Exec.calls.(7).Exec.retval

(* ---- dump protocol ---- *)

let test_dump_completes () =
  let getlink_dump =
    call "sendmsg$RTM_GETLINK" [ r 0; rtmsg ~mtype:18 ~mflags:0x300 (); i 0L ]
  in
  let recv = call "recvmsg$netlink" [ r 0; buf 64; iv 64; i 0L ] in
  let result =
    run
      (prog
         [
           nl_route ();
           newlink 0 [ ifname_attr "dummy0" ];
           getlink_dump;
           recv;
           getlink_dump;
           recv;
           recv;
         ])
  in
  (* Three devices: first batch emits two links, the resume emits the
     third and completes without touching a stale offset. *)
  Alcotest.(check int64) "first batch" 2L result.Exec.calls.(2).Exec.retval;
  Alcotest.(check int64) "mid-dump drain" 60L result.Exec.calls.(3).Exec.retval;
  Alcotest.(check int64) "resume batch" 1L result.Exec.calls.(4).Exec.retval;
  Alcotest.(check int64) "final drain" 20L result.Exec.calls.(5).Exec.retval;
  Alcotest.(check int64) "queue empty" 0L result.Exec.calls.(6).Exec.retval;
  check_crash "well-behaved dump never crashes" None result

let test_dump_stale_offset_gating () =
  let p () =
    (Bug_repros.all
    |> List.find (fun (x : Bug_repros.repro) ->
           x.Bug_repros.key = "rtnl_dump_ifinfo"))
      .Bug_repros.build ()
  in
  check_crash "absent before 5.6" None (run ~version:K.Version.V5_0 (p ()));
  check_crash "fires on 5.11" (Some "rtnl_dump_ifinfo")
    (run ~version:K.Version.V5_11 (p ()));
  check_crash "silent without KASAN" None
    (run ~version:K.Version.V5_11 ~san:K.Sanitizer.none (p ()))

(* ---- truncated attribute parse (KMSAN) ---- *)

let test_truncated_attr_gating () =
  let newlink_with atts =
    prog [ nl_route (); newlink 0 atts ]
  in
  let truncated_vlan =
    [ ifname_attr "vlan0"; kind_attr ~alen:40 "vlan" ]
  in
  check_crash "fires on 5.4" (Some "nla_parse_nested")
    (run ~version:K.Version.V5_4 (newlink_with truncated_vlan));
  check_crash "absent on 5.0" None
    (run ~version:K.Version.V5_0 (newlink_with truncated_vlan));
  check_crash "silent without KMSAN" None
    (run ~version:K.Version.V5_4
       ~san:{ K.Sanitizer.kasan = true; kmsan = false; kcsan = false }
       (newlink_with truncated_vlan));
  check_crash "well-formed vlan attr is safe" None
    (run ~version:K.Version.V5_4
       (newlink_with [ ifname_attr "vlan0"; kind_attr "vlan" ]));
  check_crash "truncated dummy kind is safe" None
    (run ~version:K.Version.V5_4
       (newlink_with [ ifname_attr "dummy1"; kind_attr ~alen:40 "dummy" ]))

(* ---- generic netlink ---- *)

let test_getfamily_resolution () =
  let getfamily name = call "sendmsg$GETFAMILY" [ r 0; getfamily_msg name; i 0L ] in
  let result =
    run
      (prog
         [
           nl_generic ();
           getfamily "nlctrl";
           getfamily "devlink";
           getfamily "ethtool";
           getfamily "nl80211";
         ])
  in
  Alcotest.(check int64) "nlctrl id" 0x10L result.Exec.calls.(1).Exec.retval;
  Alcotest.(check int64) "devlink id" 0x11L result.Exec.calls.(2).Exec.retval;
  Alcotest.(check int64) "ethtool id" 0x12L result.Exec.calls.(3).Exec.retval;
  check_errno "unknown family" (Some K.Errno.ENOENT) result.Exec.calls.(4)

let test_genl_send () =
  let result =
    run
      (prog
         [
           nl_generic ();
           call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "devlink"; i 0L ];
           call "bind$nl_generic" [ r 0; r 1 ];
           call "sendmsg$genl" [ r 0; r 1; genl_msg (); i 0L ];
           call "sendmsg$genl" [ r 0; r 1; genl_msg ~cmd:0 (); i 0L ];
           call "sendmsg$genl" [ r 0; i 999L; genl_msg (); i 0L ];
           call "bind$nl_generic" [ r 0; i 999L ];
         ])
  in
  check_ok "bind to resolved id" result.Exec.calls.(2);
  check_ok "send cmd 1" result.Exec.calls.(3);
  check_errno "CTRL_CMD_UNSPEC rejected" (Some K.Errno.EOPNOTSUPP)
    result.Exec.calls.(4);
  check_errno "unknown id" (Some K.Errno.ENOENT) result.Exec.calls.(5);
  check_errno "bind unknown id" (Some K.Errno.EINVAL) result.Exec.calls.(6);
  check_crash "no crash" None result

let test_devlink_reload_reassigns_id () =
  let result =
    run
      (prog
         [
           nl_generic ();
           call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "devlink"; i 0L ];
           call "sendmsg$devlink_reload" [ r 0; r 1; genl_msg (); i 0L ];
           (* The pre-reload id now dangles... *)
           call "sendmsg$genl" [ r 0; r 1; genl_msg (); i 0L ];
           (* ...and the reload's returned id is live. *)
           call "sendmsg$genl" [ r 0; r 2; genl_msg (); i 0L ];
           call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "devlink"; i 0L ];
           call "sendmsg$devlink_reload" [ r 0; r 1; genl_msg (); i 0L ];
         ])
  in
  let old_id = result.Exec.calls.(1).Exec.retval in
  let new_id = result.Exec.calls.(2).Exec.retval in
  Alcotest.(check bool) "reload changes the runtime id" true (old_id <> new_id);
  check_errno "stale id rejected" (Some K.Errno.ENOENT) result.Exec.calls.(3);
  check_ok "fresh id accepted" result.Exec.calls.(4);
  Alcotest.(check int64) "GETFAMILY tracks the reload" new_id
    result.Exec.calls.(5).Exec.retval;
  check_errno "reload via stale id" (Some K.Errno.ENOENT) result.Exec.calls.(6)

let test_unregister () =
  let result =
    run
      (prog
         [
           nl_generic ();
           call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "nlctrl"; i 0L ];
           call "sendmsg$nlctrl_unregister" [ r 0; r 1; i 0L ];
           call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "ethtool"; i 0L ];
           call "sendmsg$nlctrl_unregister" [ r 0; r 3; i 0L ];
           (* A known name whose family was unloaded. *)
           call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "ethtool"; i 0L ];
           call "sendmsg$nlctrl_unregister" [ r 0; r 3; i 0L ];
         ])
  in
  check_errno "nlctrl cannot be unloaded" (Some K.Errno.EPERM)
    result.Exec.calls.(2);
  check_ok "ethtool unloads" result.Exec.calls.(4);
  check_errno "GETFAMILY after unload" (Some K.Errno.ENOENT)
    result.Exec.calls.(5);
  check_errno "double unload" (Some K.Errno.ENOENT) result.Exec.calls.(6)

let test_stale_family_uaf_gating () =
  let p () =
    (Bug_repros.all
    |> List.find (fun (x : Bug_repros.repro) ->
           x.Bug_repros.key = "genl_rcv_msg"))
      .Bug_repros.build ()
  in
  check_crash "fires on 5.11" (Some "genl_rcv_msg")
    (run ~version:K.Version.V5_11 (p ()));
  check_crash "absent on 5.4" None (run ~version:K.Version.V5_4 (p ()));
  check_crash "silent without KASAN" None
    (run ~version:K.Version.V5_11
       ~san:{ K.Sanitizer.kasan = false; kmsan = true; kcsan = true }
       (p ()))

(* ---- membership / recvmsg socket plumbing ---- *)

let test_membership () =
  let add fd g =
    call "setsockopt$NETLINK_ADD_MEMBERSHIP" [ r fd; i 270L; i 1L; ptr (i g) ]
  in
  let result =
    run
      (prog
         ([ nl_route () ]
         @ List.init 8 (fun k -> add 0 (Int64.of_int (k + 1)))
         @ [
             add 0 9L;
             add 0 0L;
             call "socket$netlink" [ i 16L; i 3L; i 0L ];
             add 11 1L;
             call "recvmsg$netlink" [ r 11; buf 16; iv 16; i 0L ];
             call "socket$tcp" [ i 2L; i 1L; i 6L ];
             add 14 1L;
           ]))
  in
  for k = 1 to 8 do
    check_ok (Printf.sprintf "membership %d" k) result.Exec.calls.(k)
  done;
  check_errno "per-socket cap" (Some K.Errno.ENOSPC) result.Exec.calls.(9);
  check_errno "group zero" (Some K.Errno.EINVAL) result.Exec.calls.(10);
  check_ok "plain netlink socket joins" result.Exec.calls.(12);
  Alcotest.(check int64) "plain socket queue is empty" 0L
    result.Exec.calls.(13).Exec.retval;
  check_errno "non-netlink socket" (Some K.Errno.EOPNOTSUPP)
    result.Exec.calls.(15)

(* ---- triage: both UAF routes dedup to one signature ---- *)

let test_uaf_routes_dedup () =
  let via_unregister =
    prog
      [
        nl_generic ();
        call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "devlink"; i 0L ];
        call "bind$nl_generic" [ r 0; r 1 ];
        call "sendmsg$nlctrl_unregister" [ r 0; r 1; i 0L ];
        call "sendmsg$genl" [ r 0; r 1; genl_msg (); i 0L ];
      ]
  in
  let via_reload =
    prog
      [
        nl_generic ();
        call "sendmsg$GETFAMILY" [ r 0; getfamily_msg "devlink"; i 0L ];
        call "bind$nl_generic" [ r 0; r 1 ];
        call "sendmsg$devlink_reload" [ r 0; r 1; genl_msg (); i 0L ];
        call "sendmsg$genl" [ r 0; r 1; genl_msg (); i 0L ];
      ]
  in
  let r1 = run via_unregister and r2 = run via_reload in
  check_crash "unregister route crashes" (Some "genl_rcv_msg") r1;
  check_crash "reload route crashes" (Some "genl_rcv_msg") r2;
  let report r = Option.get r.Exec.crash in
  Alcotest.(check string) "same signature"
    (Triage.signature_of_report (report r1))
    (Triage.signature_of_report (report r2));
  let t = Triage.create ~exec:(fun p -> run p) in
  Alcotest.(check bool) "first route is new" true
    (Triage.on_crash t ~vtime:1.0 via_unregister (report r1));
  Alcotest.(check bool) "second route is a dup" false
    (Triage.on_crash t ~vtime:2.0 via_reload (report r2));
  Alcotest.(check int) "one unique vulnerability" 1 (Triage.unique_count t)

let suite =
  [
    case "registration shape" test_shape;
    case "link lifecycle" test_link_lifecycle;
    case "link kinds" test_link_kinds;
    case "message validation" test_msg_validation;
    case "setlink gates packet xmit" test_setlink_gates_xmit;
    case "newqdisc arms netdev bug" test_newqdisc_arms_netdev_bug;
    case "addresses" test_addresses;
    case "dump completes" test_dump_completes;
    case "dump stale-offset gating" test_dump_stale_offset_gating;
    case "truncated attr gating" test_truncated_attr_gating;
    case "getfamily resolution" test_getfamily_resolution;
    case "genl send" test_genl_send;
    case "devlink reload reassigns id" test_devlink_reload_reassigns_id;
    case "unregister" test_unregister;
    case "stale family UAF gating" test_stale_family_uaf_gating;
    case "membership" test_membership;
    case "UAF routes dedup" test_uaf_routes_dedup;
  ]
