(* Cross-cutting property tests over randomly generated programs: the
   invariants the whole pipeline rests on. *)

module Prog = Healer_executor.Prog
module Exec = Healer_executor.Exec
module Serializer = Healer_executor.Serializer
module Target = Healer_syzlang.Target
module Rng = Healer_util.Rng
module K = Healer_kernel
open Healer_core
open Helpers

let gen_prog seed =
  let rng = Rng.create seed in
  Gen.generate rng (tgt ())
    ~select:(fun ~sub:_ -> Rng.int rng (Target.n_syscalls (tgt ())))
    ()

(* Execution is a pure function of (program, version, features): the
   reproducibility dynamic learning and triage depend on. *)
let test_exec_deterministic =
  qcheck ~count:100 "execution is deterministic" QCheck2.Gen.small_int
    (fun seed ->
      let p = gen_prog seed in
      let r1 = run p and r2 = run p in
      (match (r1.Exec.crash, r2.Exec.crash) with
      | None, None -> true
      | Some a, Some b -> a.K.Crash.bug_key = b.K.Crash.bug_key
      | _ -> false)
      && Array.for_all2
           (fun (a : Exec.call_result) (b : Exec.call_result) ->
             a.Exec.retval = b.Exec.retval
             && a.Exec.errno = b.Exec.errno
             && Exec.cov_equal a.Exec.cov b.Exec.cov)
           r1.Exec.calls r2.Exec.calls)

(* Serialization round-trips every generator-producible program. *)
let test_serializer_total =
  qcheck ~count:200 "serializer roundtrips generated programs"
    QCheck2.Gen.small_int (fun seed ->
      let p = gen_prog seed in
      let p' = Serializer.decode (tgt ()) (Serializer.encode p) in
      Serializer.encode p = Serializer.encode p')

(* Decoding arbitrary bytes never escapes the Malformed exception. *)
let test_decoder_robust =
  qcheck ~count:500 "decoder is total on garbage" QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      match Serializer.decode (tgt ()) s with
      | _ -> true
      | exception Serializer.Malformed _ -> true)

(* Corrupting a valid encoding never escapes Malformed, and anything
   that still decodes must be validator-clean (the debug-validation
   hook in decode turns dirty decodes into Malformed; the explicit
   errors check keeps this property honest with validation off). *)
let test_decoder_robust_on_corruption =
  qcheck ~count:300 "decoder survives bit flips"
    QCheck2.Gen.(triple small_int (int_range 0 1000) (int_range 0 255))
    (fun (seed, pos, byte) ->
      let good = Serializer.encode (gen_prog seed) in
      let bytes = Bytes.of_string good in
      if Bytes.length bytes = 0 then true
      else begin
        Bytes.set bytes (pos mod Bytes.length bytes) (Char.chr byte);
        match Serializer.decode (tgt ()) (Bytes.to_string bytes) with
        | p -> Healer_executor.Progcheck.errors (tgt ()) p = []
        | exception Serializer.Malformed _ -> true
      end)

(* Removing a call never breaks the backwards-reference invariant, for
   any position in any generated program. *)
let test_remove_preserves_wf =
  qcheck ~count:200 "remove keeps programs well-formed"
    QCheck2.Gen.(pair small_int (int_range 0 40))
    (fun (seed, pos) ->
      let p = gen_prog seed in
      if Prog.length p <= 1 then true
      else Prog.well_formed (Prog.remove p (pos mod Prog.length p)))

(* Minimization: the kept subsequence reproduces the target call's
   coverage exactly (Algorithm 1's contract). *)
let test_minimize_contract =
  qcheck ~count:30 "minimization preserves target coverage"
    QCheck2.Gen.small_int (fun seed ->
      let p = gen_prog seed in
      let result = run p in
      if result.Exec.crash <> None then true
      else begin
        let cov =
          Array.map (fun (c : Exec.call_result) -> c.Exec.cov) result.Exec.calls
        in
        let last = Prog.length p - 1 in
        let new_cov = Array.make (Prog.length p) [] in
        new_cov.(last) <- cov.(last);
        let pc = { Prog_cov.prog = p; cov; new_cov } in
        let exec q =
          let kernel = boot () in
          snd (Exec.run kernel q)
        in
        match Minimize.minimize ~target:(tgt ()) ~exec pc with
        | [] -> false
        | m :: _ ->
          let final = Prog_cov.length m - 1 in
          Exec.cov_equal (Prog_cov.call_cov m final) cov.(last)
      end)

(* Dynamic learning only ever adds relations between calls that
   actually appear consecutively in some minimized subsequence. *)
let test_dynamic_edges_plausible =
  qcheck ~count:20 "dynamic learning adds plausible edges"
    QCheck2.Gen.small_int (fun seed ->
      let table = Relation_table.create (Target.n_syscalls (tgt ())) in
      let p = gen_prog seed in
      let result = run p in
      if result.Exec.crash <> None then true
      else begin
        let cov =
          Array.map (fun (c : Exec.call_result) -> c.Exec.cov) result.Exec.calls
        in
        let new_cov = Array.map (fun c -> c) cov in
        let pc = { Prog_cov.prog = p; cov; new_cov } in
        let exec q =
          let kernel = boot () in
          snd (Exec.run kernel q)
        in
        let fresh, minimized = Dynamic_learning.learn_from_run ~exec ~table pc in
        let consecutive_pairs =
          List.concat_map
            (fun (m : Prog_cov.t) ->
              let q = m.Prog_cov.prog in
              List.init
                (max 0 (Prog.length q - 1))
                (fun k ->
                  ( (Prog.call q k).Prog.syscall.Healer_syzlang.Syscall.id,
                    (Prog.call q (k + 1)).Prog.syscall.Healer_syzlang.Syscall.id )))
            minimized
        in
        List.for_all (fun e -> List.mem e consecutive_pairs) fresh
      end)

(* The corpus key (serialized form) is injective enough: two programs
   with equal encodings behave identically under execution. *)
let test_encoding_determines_behavior =
  qcheck ~count:50 "equal encodings, equal behaviour"
    QCheck2.Gen.(pair small_int small_int)
    (fun (s1, s2) ->
      let p1 = gen_prog s1 and p2 = gen_prog s2 in
      if Serializer.encode p1 <> Serializer.encode p2 then true
      else begin
        let r1 = run p1 and r2 = run p2 in
        Exec.cov_equal (Exec.total_cov r1) (Exec.total_cov r2)
      end)

let suite =
  [
    test_exec_deterministic;
    test_serializer_total;
    test_decoder_robust;
    test_decoder_robust_on_corruption;
    test_remove_preserves_wf;
    test_minimize_contract;
    test_dynamic_edges_plausible;
    test_encoding_determines_behavior;
  ]
