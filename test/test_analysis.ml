(* Static-analysis library tests: one deliberately-broken fixture per
   check ID, plus a golden test asserting the built-in kernel corpus is
   analyzer-clean. *)

module A = Healer_analysis.Analysis
module D = Healer_analysis.Diagnostic
module P = Healer_analysis.Pass

let analyze ?(name = "fixture") src = A.run (A.of_source ~name src)

let has check ds =
  List.exists (fun (d : D.t) -> String.equal d.D.check check) ds

let expect check ds =
  if not (has check ds) then
    Alcotest.fail
      (Fmt.str "expected a %s diagnostic, got:@.%a" check
         (Fmt.list ~sep:Fmt.cut D.pp) ds)

let expect_none check ds =
  if has check ds then Alcotest.fail (Fmt.str "unexpected %s diagnostic" check)

(* ---- loader pseudo-checks ---- *)

let test_parse_error () =
  let ds = analyze "resource fd[\n" in
  expect "parse-error" ds;
  Alcotest.(check bool) "is error" true (D.has_errors ds)

let test_compile_error () =
  let ds = analyze "use(x no_such_type)\n" in
  expect "compile-error" ds

(* Decl-level checks still run when compilation fails. *)
let test_decl_checks_survive_compile_failure () =
  let ds =
    analyze "flags f = 1 2\nflags f = 3 4\nuse(x no_such_type)\n"
  in
  expect "compile-error" ds;
  expect "sem-dup-spec" ds

(* ---- semantics ---- *)

let test_dup_spec () =
  let ds = analyze "flags f = 1 2\nflags f = 3 4\nnop(a flags[f])\n" in
  expect "sem-dup-spec" ds

let test_res_special_width () =
  let ds = analyze "resource fd[int8]: 999\nmk() fd\nuse(f fd)\n" in
  expect "sem-res-special-width" ds

let test_len_target () =
  (* A len in a struct body naming no sibling; compile only rejects the
     call-argument case, so this reaches the analyzer. *)
  let ds =
    analyze "struct s { n len[zzz], d int32 }\nuse(p ptr[in, s])\n"
  in
  expect "sem-len-target" ds

let test_len_nested () =
  let ds = analyze "snd(b ptr[in, array[int8]], n ptr[in, len[b]])\n" in
  expect "sem-len-target" ds

let test_dir_conflict () =
  let ds =
    analyze
      "resource fd[int32]\n\
       mk() fd\n\
       struct s { r fd out }\n\
       use(p ptr[in, s])\n"
  in
  expect "sem-dir-conflict" ds

let test_dir_conflict_clean () =
  let ds =
    analyze
      "resource fd[int32]\n\
       mk() fd\n\
       struct s { r fd out }\n\
       use(p ptr[out, s])\n"
  in
  expect_none "sem-dir-conflict" ds

let test_struct_cycle () =
  let ds =
    analyze "struct a { x b }\nstruct b { y a }\nnop(v int32)\n"
  in
  expect "sem-struct-cycle" ds;
  (* The a <-> b cycle must be reported once, not once per entry point. *)
  let n =
    List.length
      (List.filter
         (fun (d : D.t) -> String.equal d.D.check "sem-struct-cycle")
         ds)
  in
  Alcotest.(check int) "one report per cycle" 1 n

let test_struct_cycle_ptr_ok () =
  let ds =
    analyze "struct a { x ptr[in, a], v int32 }\nuse(p ptr[in, a])\n"
  in
  expect_none "sem-struct-cycle" ds

let test_int_range () =
  let ds = analyze "struct s { q int8[0:300] }\nuse(p ptr[in, s])\n" in
  expect "sem-int-range" ds

let test_const_width () =
  let ds =
    analyze
      "resource fd[int32]\n\
       mk() fd\n\
       ioctl$BAD(f fd, cmd const[0x123456789])\n"
  in
  expect "sem-const-width" ds

(* ---- reachability ---- *)

let unreachable_src =
  "resource ghost[int32]\nconsume(g ghost)\nnop(v int32)\n"

let test_unreachable_call () =
  expect "reach-unreachable-call" (analyze unreachable_src)

let test_unproducible_resource () =
  expect "reach-unproducible-resource" (analyze unreachable_src)

let test_reachable_via_inheritance () =
  (* A producer of the child kind enables a consumer of that kind. *)
  let ds =
    analyze
      "resource fd[int32]\n\
       resource fd_dev[fd]\n\
       mk() fd_dev\n\
       use(f fd_dev)\n"
  in
  expect_none "reach-unreachable-call" ds;
  expect_none "reach-unproducible-resource" ds

(* ---- handler drift ---- *)

let drift_input ~handlers ~file_ops src =
  { (A.of_source ~name:"drift" src) with P.handlers = Some handlers; file_ops }

let test_drift_missing_handler () =
  let input =
    drift_input ~handlers:[] ~file_ops:[] "nop(v int32)\n"
  in
  expect "drift-missing-handler" (A.run input)

let test_drift_orphan_handler () =
  let input =
    drift_input
      ~handlers:[ ("nop", "misc"); ("phantom_call", "misc") ]
      ~file_ops:[] "nop(v int32)\n"
  in
  let ds = A.run input in
  expect "drift-orphan-handler" ds;
  expect_none "drift-missing-handler" ds

let test_drift_orphan_fileop () =
  let input =
    drift_input
      ~handlers:[ ("nop", "misc") ]
      ~file_ops:[ ("frobnicate", "misc") ]
      "nop(v int32)\n"
  in
  expect "drift-orphan-fileop" (A.run input)

let test_drift_disabled_without_tables () =
  (* of_source leaves handlers = None: no drift findings on standalone
     description files. *)
  let ds = analyze "nop(v int32)\n" in
  expect_none "drift-missing-handler" ds

(* ---- relations ---- *)

let test_rel_unreachable_producer () =
  (* mk_r -> use_r is a static edge, but mk_r itself needs an
     unproducible resource, so the edge is not actionable. *)
  let ds =
    analyze
      "resource ghost[int32]\n\
       resource r[int32]\n\
       mk_r(g ghost) r\n\
       use_r(x r)\n"
  in
  expect "rel-unreachable-producer" ds

let test_rel_dense () =
  (* 4 producers x 4 consumers of one kind: 16 edges over 56 ordered
     pairs, far beyond the sparsity the paper reports. *)
  let b = Buffer.create 256 in
  Buffer.add_string b "resource r[int32]\n";
  for i = 1 to 4 do
    Buffer.add_string b (Printf.sprintf "mk%d() r\n" i)
  done;
  for i = 1 to 4 do
    Buffer.add_string b (Printf.sprintf "use%d(a r)\n" i)
  done;
  let ds = analyze (Buffer.contents b) in
  expect "rel-dense" ds

let test_rel_density_info () =
  let ds = analyze "resource fd[int32]\nmk() fd\nuse(f fd)\n" in
  expect "rel-density" ds;
  (* ...but natural density on a tiny target is not flagged. *)
  expect_none "rel-dense" ds

(* ---- migrated lint checks ---- *)

let lint_src =
  "resource fd[int32]\n\
   resource ghost[int32]\n\
   resource orphan[int32]\n\
   flags unused = 1 2\n\
   struct dead { v int32 }\n\
   union lost { a int32, b int64 }\n\
   mk() fd\n\
   mk_orphan() orphan\n\
   consume_ghost(g ghost)\n\
   use(f fd)\n"

let test_lint_checks () =
  let ds = analyze lint_src in
  expect "lint-unused-flagset" ds;
  expect "lint-unreachable-struct" ds;
  expect "lint-unreachable-union" ds;
  expect "lint-no-producer" ds;
  expect "lint-no-consumer" ds;
  expect "lint-unproducible-consume" ds

let test_lint_clean () =
  let ds =
    analyze "resource fd[int32]\nmk() fd\nuse(f fd)\n"
    |> List.filter (fun (d : D.t) -> d.D.severity <> D.Info)
  in
  Alcotest.(check int) "clean" 0 (List.length ds)

(* ---- diagnostics core ---- *)

let test_positions () =
  let ds = analyze ~name:"pos.txt" "resource fd[int8]: 999\nmk() fd\nuse(f fd)\n" in
  let d =
    List.find (fun (d : D.t) -> d.D.check = "sem-res-special-width") ds
  in
  (match d.D.pos with
  | Some { D.src = Some "pos.txt"; line = 1 } -> ()
  | _ -> Alcotest.fail "wrong position");
  Alcotest.(check bool)
    "rendered with position" true
    (let s = Fmt.str "%a" D.pp d in
     String.length s >= 10 && String.sub s 0 10 = "pos.txt:1:")

let test_ordering () =
  let ds = analyze unreachable_src in
  let sevs = List.map (fun (d : D.t) -> D.severity_rank d.D.severity) ds in
  Alcotest.(check bool)
    "errors before warnings before infos" true
    (List.sort compare sevs = sevs)

let test_json () =
  let ds = analyze ~name:"j" "resource fd[int8]: 999\nmk() fd\nuse(f fd)\n" in
  let json = D.list_to_json ~name:"j" ds in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names target" true (contains "\"target\":\"j\"");
  Alcotest.(check bool) "carries check id" true
    (contains "\"check\":\"sem-res-special-width\"");
  Alcotest.(check bool) "counts errors" true (contains "\"errors\":1")

let test_check_ids_unique () =
  let ids = List.map (fun (id, _, _, _) -> id) A.all_checks in
  Alcotest.(check int)
    "no duplicate check IDs"
    (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

(* ---- golden: the shipped corpus is analyzer-clean ---- *)

let test_corpus_clean () =
  let ds = A.run (A.of_kernel ()) in
  let errors = D.count D.Error ds and warnings = D.count D.Warning ds in
  (match
     List.filter (fun (d : D.t) -> d.D.severity <> D.Info) ds
   with
  | [] -> ()
  | noisy ->
    Alcotest.fail
      (Fmt.str "corpus not clean:@.%a" (Fmt.list ~sep:Fmt.cut D.pp) noisy));
  Alcotest.(check int) "no errors" 0 errors;
  Alcotest.(check int) "no warnings" 0 warnings;
  (* The density stat is always reported. *)
  expect "rel-density" ds

let suite =
  [
    Alcotest.test_case "parse error" `Quick test_parse_error;
    Alcotest.test_case "compile error" `Quick test_compile_error;
    Alcotest.test_case "decl checks survive compile failure" `Quick
      test_decl_checks_survive_compile_failure;
    Alcotest.test_case "sem-dup-spec" `Quick test_dup_spec;
    Alcotest.test_case "sem-res-special-width" `Quick test_res_special_width;
    Alcotest.test_case "sem-len-target" `Quick test_len_target;
    Alcotest.test_case "sem-len-target nested" `Quick test_len_nested;
    Alcotest.test_case "sem-dir-conflict" `Quick test_dir_conflict;
    Alcotest.test_case "sem-dir-conflict clean" `Quick test_dir_conflict_clean;
    Alcotest.test_case "sem-struct-cycle" `Quick test_struct_cycle;
    Alcotest.test_case "sem-struct-cycle ptr ok" `Quick test_struct_cycle_ptr_ok;
    Alcotest.test_case "sem-int-range" `Quick test_int_range;
    Alcotest.test_case "sem-const-width" `Quick test_const_width;
    Alcotest.test_case "reach-unreachable-call" `Quick test_unreachable_call;
    Alcotest.test_case "reach-unproducible-resource" `Quick
      test_unproducible_resource;
    Alcotest.test_case "reachable via inheritance" `Quick
      test_reachable_via_inheritance;
    Alcotest.test_case "drift-missing-handler" `Quick test_drift_missing_handler;
    Alcotest.test_case "drift-orphan-handler" `Quick test_drift_orphan_handler;
    Alcotest.test_case "drift-orphan-fileop" `Quick test_drift_orphan_fileop;
    Alcotest.test_case "drift disabled without tables" `Quick
      test_drift_disabled_without_tables;
    Alcotest.test_case "rel-unreachable-producer" `Quick
      test_rel_unreachable_producer;
    Alcotest.test_case "rel-dense" `Quick test_rel_dense;
    Alcotest.test_case "rel-density info" `Quick test_rel_density_info;
    Alcotest.test_case "lint checks" `Quick test_lint_checks;
    Alcotest.test_case "lint clean" `Quick test_lint_clean;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "json" `Quick test_json;
    Alcotest.test_case "check ids unique" `Quick test_check_ids_unique;
    Alcotest.test_case "corpus clean" `Quick test_corpus_clean;
  ]
