(* Importing a C interface header (the paper's Section 8 extension).

   Converts an inline device header into Syzlang with
   Cheader.convert, compiles it together with a hand-written resource
   prelude, runs the static analyzer over the result, and shows what
   static relation learning infers for the generated interfaces — the
   workflow the paper proposes for reducing the cost of hand-writing
   descriptions.

   Run with: dune exec examples/header_import.exe *)

module Cheader = Healer_syzlang.Cheader
module Target = Healer_syzlang.Target
module Syscall = Healer_syzlang.Syscall
open Healer_core

let header =
  {|
/* drivers/misc/widget.h — a typical device interface header. */
#define WIDGET_MODE_OFF   0x0
#define WIDGET_MODE_SLOW  0x1
#define WIDGET_MODE_FAST  0x2
#define WIDGET_MAX_UNITS  8

struct widget_config {
    __u32 mode;
    __u32 units;
    __u64 period_ns;
    char label[16];
};

struct widget_stats {
    __u64 cycles;
    __u32 faults;
    __u32 pad;
};

#define WIDGET_RESET  _IO('w', 0x00)
#define WIDGET_SETUP  _IOW('w', 0x01, struct widget_config)
#define WIDGET_STATS  _IOR('w', 0x02, struct widget_stats)
|}

(* The manual part the paper keeps: declaring the device's resource and
   its constructor. *)
let prelude =
  {|
resource fd[int32]: -1
resource fd_widget[fd]
flags widget_open_flags = 0x0 0x2
open_widget(flags flags[widget_open_flags]) fd_widget
close_widget(fd fd_widget)
|}

let () =
  let generated = Cheader.convert ~fd_resource:"fd_widget" header in
  Fmt.pr "Generated Syzlang:@.---@.%s---@.@." generated;

  let target = Target.of_string ~name:"widget" (prelude ^ generated) in
  Fmt.pr "Compiled: %a@.@." Target.pp_summary target;

  let module A = Healer_analysis in
  (match
     A.Analysis.run (A.Analysis.of_source ~name:"widget" (prelude ^ generated))
     |> List.filter (fun (d : A.Diagnostic.t) ->
            d.A.Diagnostic.severity <> A.Diagnostic.Info)
   with
  | [] -> Fmt.pr "Analyzer: clean.@."
  | ds ->
    Fmt.pr "Analyzer:@.";
    List.iter (fun d -> Fmt.pr "  %a@." A.Diagnostic.pp d) ds);

  let table = Static_learning.initial_table target in
  Fmt.pr "@.Static relations inferred for the imported interfaces:@.";
  List.iter
    (fun (a, b) ->
      Fmt.pr "  %-24s -> %s@."
        (Target.syscall target a).Syscall.name
        (Target.syscall target b).Syscall.name)
    (Relation_table.edges table);

  (* The generated calls are immediately generatable. *)
  let rng = Healer_util.Rng.create 1 in
  let prog =
    Gen.generate rng target
      ~select:(fun ~sub:_ -> Healer_util.Rng.int rng (Target.n_syscalls target))
      ()
  in
  Fmt.pr "@.A generated test case over the imported target:@.%s@."
    (Healer_executor.Prog.to_string prog)
